//! The campaign gate's canonical report must be run-to-run deterministic
//! (same seed → byte-identical JSON), seed-sensitive, and free of
//! wall-clock fields — otherwise the golden diff would flap in CI.

use alm_chaos::{CampaignReport, SimCampaign};

fn canonical(seed: u64, n: usize) -> String {
    let (campaign, scenarios) = SimCampaign::golden_gate(seed, n);
    assert_eq!(scenarios.len(), n);
    let mut report = CampaignReport::new("campaign-gate", seed);
    report.extend(campaign.run(&scenarios));
    report.canonical_json()
}

#[test]
fn canonical_gate_report_is_deterministic_and_wall_clock_free() {
    let a = canonical(42, 2);
    assert_eq!(a, canonical(42, 2), "same seed must give a byte-identical canonical report");
    assert_ne!(a, canonical(7, 2), "a different seed must sample a different campaign");
    assert!(!a.contains("duration_secs"), "wall-clock fields must be stripped:\n{a}");
    for key in [
        "scenario",
        "engine",
        "mode",
        "succeeded",
        "injected_faults",
        "total_failures",
        "spatial_amplification",
        "temporal_amplification",
        "fcm_attempts",
    ] {
        assert!(a.contains(&format!("\"{key}\"")), "canonical report lost {key}:\n{a}");
    }
}
