//! Chaos-subsystem overheads: sampling a randomized campaign from a
//! [`FaultSpace`] and lowering scenarios onto both engines' fault
//! vocabularies. These run per scenario inside campaign loops, so they
//! must stay negligible next to a single simulated job (milliseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use alm_chaos::{ChaosFault, ChaosScenario, FaultSpace, LoweringProfile};
use alm_sim::SimFault;
use alm_types::JobId;

fn dense_scenario(faults: usize) -> ChaosScenario {
    let mut s = ChaosScenario::new("dense");
    for i in 0..faults as u32 {
        s = match i % 5 {
            0 => s.with(ChaosFault::KillReduce { index: i % 20, at_progress: 0.5 }),
            1 => s.with(ChaosFault::KillMap { index: i % 80, at_progress: 0.3 }),
            2 => s.with(ChaosFault::CrashNode { node: i % 20, at_secs: 10.0 + i as f64 }),
            3 => s.with(ChaosFault::SlowNode { node: i % 20, at_secs: 5.0, factor: 3.0 }),
            _ => s.with(ChaosFault::CrashRack { rack: i % 2, at_secs: 20.0 }),
        };
    }
    s
}

fn bench_sample(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_sample");
    let space = FaultSpace::paper_like(20, 2, 80, 20);
    for n in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("scenarios", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                space.sample(n, seed)
            })
        });
    }
    g.finish();
}

fn bench_lower(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_lower");
    let profile = LoweringProfile { workers: 20, racks: 2, ms_per_scenario_sec: 1000.0 };
    for faults in [1usize, 10, 100] {
        let s = dense_scenario(faults);
        g.bench_with_input(BenchmarkId::new("to_shared_plan", faults), &s, |b, s| {
            b.iter(|| s.lower(JobId(0), &profile))
        });
        let plan = s.lower(JobId(0), &profile);
        g.bench_with_input(BenchmarkId::new("plan_to_sim", faults), &plan, |b, plan| {
            b.iter(|| SimFault::lower_plan(plan))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sample, bench_lower);
criterion_main!(benches);
