//! Map-side sort-buffer throughput: collect → sort → spill → merged MOF,
//! across spill-pressure regimes (one big sort vs many spills + merge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::SmallRng, RngCore, SeedableRng};

use alm_shuffle::{bytewise_cmp, MapOutputBuffer, MemFs};

fn records(n: usize) -> Vec<(u32, Vec<u8>, Vec<u8>)> {
    let mut rng = SmallRng::seed_from_u64(3);
    (0..n)
        .map(|_| {
            let mut key = vec![0u8; 10];
            rng.fill_bytes(&mut key);
            let part = (key[0] as u32) % 8;
            (part, key, vec![0u8; 90])
        })
        .collect()
}

fn bench_spill(c: &mut Criterion) {
    let mut g = c.benchmark_group("spill_sort");
    let recs = records(20_000);
    let bytes: u64 = recs.iter().map(|(_, k, v)| (k.len() + v.len() + 8) as u64).sum();
    g.throughput(Throughput::Bytes(bytes));
    // Threshold >> data: a single in-memory sort; threshold << data: many
    // spills plus the final factor merge.
    for (label, threshold) in [("one-spill", u64::MAX), ("many-spills", 128 * 1024)] {
        g.bench_with_input(BenchmarkId::new("threshold", label), &recs, |b, recs| {
            b.iter(|| {
                let fs = MemFs::new();
                let mut buf = MapOutputBuffer::new(bytewise_cmp(), None, 8, threshold, "m/");
                for (p, k, v) in recs {
                    buf.collect(&fs, *p, k.clone(), v.clone()).unwrap();
                }
                let mof = buf.finish(&fs).unwrap();
                mof.total_bytes()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
