//! Analytics-logging costs: writing a snapshot (the per-interval overhead
//! ALG imposes on a running ReduceTask, §III) and recovering state from the
//! latest valid record (what SFM pays at migration time, §IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use alm_core::{recover_state, LogPaths, LogRecord, MpqLogEntry, StageLog};
use alm_dfs::{DfsCluster, Topology};
use alm_shuffle::{LocalFs, MemFs, SegmentSource};
use alm_types::{JobId, TaskId};

fn record_with_mpq(entries: usize, seq: u64) -> LogRecord {
    let mpq: Vec<MpqLogEntry> = (0..entries)
        .map(|i| MpqLogEntry {
            source: SegmentSource::LocalFile { path: format!("reduce/attempt/final-{i}.out") },
            offset: (i as u64) * 4096,
        })
        .collect();
    LogRecord::new(
        TaskId::reduce(JobId(1), 0).attempt(0),
        seq,
        seq * 1000,
        StageLog::Reduce {
            records_processed: seq * 10_000,
            mpq,
            output_path: "/alg/partial".into(),
            output_records: seq * 9000,
        },
    )
}

fn bench_log_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("alg_log_write");
    for entries in [1usize, 10, 100] {
        g.bench_with_input(BenchmarkId::new("mpq_entries", entries), &entries, |b, &entries| {
            let fs = MemFs::new();
            let mut seq = 0u64;
            b.iter(|| {
                let rec = record_with_mpq(entries, seq);
                let encoded = rec.encode();
                fs.write(&format!("alg/log-{seq:08}"), encoded).unwrap();
                seq += 1;
            })
        });
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("alg_recover");
    for n_records in [1usize, 16, 128] {
        g.bench_with_input(BenchmarkId::new("log_records", n_records), &n_records, |b, &n| {
            // A task directory with n historical records; recovery must
            // scan, validate and pick the newest.
            let paths = LogPaths::for_task(TaskId::reduce(JobId(1), 0));
            let fs = MemFs::new();
            let dfs = DfsCluster::new(Topology::even(4, 2), 128 << 20, 2);
            for seq in 0..n as u64 {
                fs.write(&paths.local_record(seq), record_with_mpq(50, seq).encode()).unwrap();
            }
            b.iter(|| {
                let st = recover_state(Some(&fs), &dfs, &paths);
                assert!(!st.is_fresh());
                st.seq()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_log_write, bench_recovery);
criterion_main!(benches);
