//! Fast Collective Merging vs single-node merging of the same data —
//! the core of the paper's Fig. 14 claim: distributing the pre-merge to
//! participant nodes and pipelining it against the global merge beats one
//! reducer merging everything itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::SmallRng, RngCore, SeedableRng};

use alm_core::{collective_merge, Participant};
use alm_shuffle::segment::{build_segment, SegmentReader, SegmentSource};
use alm_shuffle::{bytewise_cmp, MergeQueue};
use alm_types::NodeId;

fn make_node_segments(nodes: usize, segs_per_node: usize, records: usize) -> Vec<Vec<bytes::Bytes>> {
    let mut rng = SmallRng::seed_from_u64(11);
    (0..nodes)
        .map(|_| {
            (0..segs_per_node)
                .map(|_| {
                    let mut recs: Vec<(Vec<u8>, Vec<u8>)> = (0..records)
                        .map(|_| {
                            let mut key = vec![0u8; 10];
                            rng.fill_bytes(&mut key);
                            (key, vec![0u8; 54])
                        })
                        .collect();
                    recs.sort();
                    build_segment(&recs)
                })
                .collect()
        })
        .collect()
}

fn bench_fcm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fcm_vs_single");
    for nodes in [2usize, 4, 8] {
        let data = make_node_segments(nodes, 4, 12_000 / nodes);
        let bytes: u64 = data.iter().flatten().map(|s| s.len() as u64).sum();
        g.throughput(Throughput::Bytes(bytes));

        g.bench_with_input(BenchmarkId::new("single-node-merge", nodes), &data, |b, data| {
            b.iter(|| {
                let readers: Vec<SegmentReader> = data
                    .iter()
                    .flatten()
                    .enumerate()
                    .map(|(i, s)| {
                        SegmentReader::new(SegmentSource::Memory { id: i as u64 }, s.clone()).unwrap()
                    })
                    .collect();
                let mut q = MergeQueue::new(bytewise_cmp(), readers);
                let mut n = 0u64;
                while let Some((k, _)) = q.pop().unwrap() {
                    n += k.len() as u64;
                }
                n
            })
        });

        g.bench_with_input(BenchmarkId::new("collective-merge", nodes), &data, |b, data| {
            b.iter(|| {
                let participants: Vec<Participant> = data
                    .iter()
                    .enumerate()
                    .map(|(n, segs)| Participant {
                        node: NodeId(n as u32),
                        segments: segs
                            .iter()
                            .enumerate()
                            .map(|(i, s)| {
                                SegmentReader::new(
                                    SegmentSource::Memory { id: (n * 100 + i) as u64 },
                                    s.clone(),
                                )
                                .unwrap()
                            })
                            .collect(),
                    })
                    .collect();
                let mut n = 0u64;
                collective_merge(&bytewise_cmp(), participants, 64 * 1024, |k, _| n += k.len() as u64)
                    .unwrap();
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fcm);
criterion_main!(benches);
