//! K-way MPQ merge throughput: how merge cost scales with the number of
//! input segments — the quantity `io.sort.factor` bounds and the reason
//! the paper treats merging as the ReduceTask bottleneck (§IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::SmallRng, RngCore, SeedableRng};

use alm_shuffle::segment::{build_segment, SegmentReader, SegmentSource};
use alm_shuffle::{bytewise_cmp, MergeQueue};

fn make_segments(k: usize, records_per_segment: usize) -> Vec<bytes::Bytes> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..k)
        .map(|_| {
            let mut recs: Vec<(Vec<u8>, Vec<u8>)> = (0..records_per_segment)
                .map(|_| {
                    let mut key = vec![0u8; 10];
                    rng.fill_bytes(&mut key);
                    (key, vec![0u8; 90])
                })
                .collect();
            recs.sort();
            build_segment(&recs)
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpq_merge");
    let total_records = 40_000usize;
    for k in [2usize, 8, 32, 100] {
        let segs = make_segments(k, total_records / k);
        let bytes: u64 = segs.iter().map(|s| s.len() as u64).sum();
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::new("segments", k), &segs, |b, segs| {
            b.iter(|| {
                let readers: Vec<SegmentReader> = segs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        SegmentReader::new(SegmentSource::Memory { id: i as u64 }, s.clone()).unwrap()
                    })
                    .collect();
                let mut q = MergeQueue::new(bytewise_cmp(), readers);
                let mut n = 0u64;
                while let Some((k, _)) = q.pop().unwrap() {
                    n += k.len() as u64;
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
