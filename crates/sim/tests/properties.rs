//! Property-based tests of the simulation engine: under *arbitrary* fault
//! plans the simulator must terminate, stay internally consistent, and
//! preserve the qualitative guarantees of each recovery mode.

use proptest::prelude::*;

use alm_sim::{ExperimentEnv, SimFault, SimJobSpec, Simulation};
use alm_types::units::GB;
use alm_types::{FailureKind, RecoveryMode};
use alm_workloads::WorkloadKind;

fn arb_mode() -> impl Strategy<Value = RecoveryMode> {
    prop_oneof![
        Just(RecoveryMode::Baseline),
        Just(RecoveryMode::Alg),
        Just(RecoveryMode::Sfm),
        Just(RecoveryMode::SfmAlg),
    ]
}

fn arb_workload() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Terasort),
        Just(WorkloadKind::Wordcount),
        Just(WorkloadKind::SecondarySort),
    ]
}

fn arb_fault(reduces: u32) -> impl Strategy<Value = SimFault> {
    prop_oneof![
        (0..reduces, 0.01f64..0.99)
            .prop_map(|(r, p)| SimFault::KillReduceAtProgress { reduce_index: r, at_progress: p }),
        (0u32..40, 0.01f64..0.99)
            .prop_map(|(m, p)| SimFault::KillMapAtProgress { map_index: m, at_progress: p }),
        (0u32..20, 1.0f64..300.0).prop_map(|(n, t)| SimFault::CrashNodeAtSecs { node: n, at_secs: t }),
        (0u32..20, 0..reduces, 0.01f64..0.99).prop_map(|(n, r, p)| SimFault::CrashNodeAtReduceProgress {
            node: n,
            reduce_index: r,
            at_progress: p
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whatever we throw at it (up to two arbitrary faults), the simulation
    /// terminates with a consistent report: time-ordered failures, progress
    /// samples in [0,1], attempt counts covering every task at least once,
    /// and success implying a full set of completed reducers.
    #[test]
    fn any_fault_plan_yields_consistent_report(
        kind in arb_workload(),
        mode in arb_mode(),
        gb in 5u64..30,
        reduces in 1u32..16,
        faults in proptest::collection::vec(arb_fault(16), 0..3),
    ) {
        let faults: Vec<SimFault> = faults
            .into_iter()
            .map(|f| match f {
                SimFault::KillReduceAtProgress { reduce_index, at_progress } =>
                    SimFault::KillReduceAtProgress { reduce_index: reduce_index % reduces, at_progress },
                SimFault::CrashNodeAtReduceProgress { node, reduce_index, at_progress } =>
                    SimFault::CrashNodeAtReduceProgress { node, reduce_index: reduce_index % reduces, at_progress },
                other => other,
            })
            .collect();
        let crash_count = faults
            .iter()
            .filter(|f| matches!(f, SimFault::CrashNodeAtSecs { .. } | SimFault::CrashNodeAtReduceProgress { .. }))
            .count();
        let spec = SimJobSpec::new(kind, gb * GB, reduces, 7);
        let report = Simulation::new(spec, ExperimentEnv::paper(mode), faults).run();

        // Termination with a bounded event count (no livelock).
        prop_assert!(report.events < 10_000_000, "event explosion: {}", report.events);

        // Failures are time-ordered and timestamped within the run.
        for w in report.failures.windows(2) {
            prop_assert!(w[0].at_secs <= w[1].at_secs);
        }
        for f in &report.failures {
            prop_assert!(f.at_secs <= report.job_secs + 1e-6);
        }

        // Progress samples stay in [0, 1].
        for samples in report.reduce_progress.values() {
            for &(t, p) in samples {
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!(t <= report.job_secs + 1e-6);
            }
        }

        // Attempt accounting: at least one attempt per task.
        prop_assert!(report.reduce_attempts >= reduces);

        // Crashing at most 2 of 20 nodes must never sink the job.
        if crash_count <= 2 {
            prop_assert!(report.succeeded, "job failed: {:?}", report.failures);
            for r in 0..reduces {
                let samples = report.reduce_progress.get(&r).expect("sampled");
                prop_assert!(samples.last().unwrap().1 >= 1.0 - 1e-9, "reduce {r} unfinished");
            }
        }
    }

    /// SFM modes never let a reducer die of fetch failures — the defining
    /// anti-amplification guarantee — under any single node crash.
    #[test]
    fn sfm_never_amplifies_under_single_crash(
        node in 0u32..20,
        at in prop_oneof![
            (1.0f64..200.0).prop_map(|t| (true, t, 0.0)),
            (0.05f64..0.95).prop_map(|p| (false, 0.0, p)),
        ],
        mode in prop_oneof![Just(RecoveryMode::Sfm), Just(RecoveryMode::SfmAlg)],
    ) {
        let fault = match at {
            (true, t, _) => SimFault::CrashNodeAtSecs { node, at_secs: t },
            (false, _, p) => SimFault::CrashNodeAtReduceProgress { node, reduce_index: 0, at_progress: p },
        };
        let spec = SimJobSpec::new(WorkloadKind::Terasort, 20 * GB, 8, 3);
        let report = Simulation::new(spec, ExperimentEnv::paper(mode), vec![fault]).run();
        prop_assert!(report.succeeded, "{:?}", report.failures);
        let fetch_deaths = report
            .failures
            .iter()
            .filter(|f| f.kind == FailureKind::FetchFailureLimit)
            .count();
        prop_assert_eq!(fetch_deaths, 0, "SFM must prevent fetch-failure preemption: {:?}", report.failures);
    }
}
