//! Discrete-event cluster experiment engine.
//!
//! Models the paper's 21-node testbed (§V-A) in virtual time so that every
//! figure and table of the evaluation — 100 GB Terasort runs, node crashes
//! with 70-second detection timeouts, replication sweeps to 320 GB — runs
//! in milliseconds of real time while preserving the *mechanisms* the
//! results depend on: bandwidth contention (equal-share NIC/disk/uplink
//! pools from `alm-des`), fetch-retry treadmills against lost MOFs,
//! liveness-timeout failure detection, and the recovery policies of
//! `alm-core` (shared verbatim with the threaded runtime).
//!
//! | module | role |
//! |---|---|
//! | [`spec`] | experiment inputs: job spec, fault specs, mode matrix |
//! | [`quantities`] | derived byte/cost quantities from the workload model |
//! | [`engine`] | the simulation itself: nodes, tasks, AM, failure handling |
//! | [`trace`] | outputs: completion times, failures, progress timelines |
//! | [`experiment`] | per-figure runners used by the bench harness |

#![forbid(unsafe_code)]

pub mod engine;
pub mod experiment;
pub mod quantities;
pub mod spec;
pub mod trace;

pub use engine::Simulation;
pub use quantities::Quantities;
pub use spec::{ExperimentEnv, SimFault, SimJobSpec};
pub use trace::SimReport;
