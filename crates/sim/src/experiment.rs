//! Per-figure experiment runners (§II and §V of the paper).
//!
//! Each function reproduces one figure or table: it runs the simulations,
//! assembles the series/tables/timelines into an
//! [`alm_metrics::ExperimentReport`], and attaches headline observations
//! (average improvements etc.) as notes. The bench harness binaries are
//! thin wrappers over these.

use alm_metrics::{stats::improvement_pct, ExperimentReport, Series, TextTable};
use alm_types::units::GB;
use alm_types::{RecoveryMode, ReplicationLevel, TaskId};
use alm_workloads::WorkloadKind;

use crate::engine::Simulation;
use crate::spec::{ExperimentEnv, SimFault, SimJobSpec};
use crate::trace::SimReport;

/// Run one simulation.
pub fn run_one(spec: &SimJobSpec, env: &ExperimentEnv, faults: Vec<SimFault>) -> SimReport {
    Simulation::new(spec.clone(), env.clone(), faults).run()
}

/// Discover which node hosts attempt 0 of `reduce_index` (deterministic
/// given the spec), by running the failure-free job once.
pub fn node_of_reduce(spec: &SimJobSpec, env: &ExperimentEnv, reduce_index: u32) -> u32 {
    let clean = run_one(spec, env, vec![]);
    clean.reduce_nodes.get(&reduce_index).and_then(|v| v.first()).copied().unwrap_or(0)
}

fn env(mode: RecoveryMode) -> ExperimentEnv {
    ExperimentEnv::paper(mode)
}

/// Fig. 1 — recovery time of N MapTask failures vs one ReduceTask failure.
pub fn fig1(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig1", "Recovery time: MapTask vs ReduceTask failures");
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    let e = env(RecoveryMode::Baseline);
    rep.param("workload", "terasort").param("input", "100 GB").param("mode", "baseline").param("seed", seed);

    let clean = run_one(&spec, &e, vec![]).job_secs;
    let mut maps = Series::new("map-failures", "failed MapTasks", "recovery time (s)");
    for n in [1u32, 50, 100, 150, 200] {
        let faults: Vec<SimFault> =
            (0..n).map(|i| SimFault::KillMapAtProgress { map_index: i * 3, at_progress: 0.5 }).collect();
        let r = run_one(&spec, &e, faults);
        maps.push(n as f64, (r.job_secs - clean).max(0.0));
    }
    let mut reduce = Series::new("one-reduce-failure", "failed ReduceTasks", "recovery time (s)");
    let r = run_one(&spec, &e, vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 }]);
    reduce.push(1.0, (r.job_secs - clean).max(0.0));

    let map200 = maps.y_at(200.0).unwrap_or(0.0);
    let red1 = reduce.y_at(1.0).unwrap_or(0.0);
    if map200 > 0.5 {
        rep.note(format!(
            "one ReduceTask failure costs {red1:.1}s vs {map200:.1}s for 200 MapTask failures ({:.1}x)",
            red1 / map200
        ));
    } else {
        rep.note(format!(
            "one ReduceTask failure costs {red1:.1}s of added job time; even 200 MapTask failures cost under a second (re-executions fit into wave slack)"
        ));
    }
    rep.series.push(maps);
    rep.series.push(reduce);
    rep
}

/// Fig. 2 — delayed job execution: slowdown vs failure-injection progress.
pub fn fig2(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig2", "Delayed execution under single task failures (baseline)");
    rep.param("mode", "baseline").param("seed", seed);
    let e = env(RecoveryMode::Baseline);
    for kind in [WorkloadKind::Terasort, WorkloadKind::Wordcount] {
        let spec = SimJobSpec::paper(kind, seed);
        let clean = run_one(&spec, &e, vec![]).job_secs;
        let mut map_s = Series::new(format!("{kind}-map-failure"), "injection progress (%)", "slowdown (%)");
        let mut red_s =
            Series::new(format!("{kind}-reduce-failure"), "injection progress (%)", "slowdown (%)");
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let rm = run_one(&spec, &e, vec![SimFault::KillMapAtProgress { map_index: 0, at_progress: p }]);
            map_s.push(p * 100.0, (rm.job_secs / clean - 1.0) * 100.0);
            let rr =
                run_one(&spec, &e, vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: p }]);
            red_s.push(p * 100.0, (rr.job_secs / clean - 1.0) * 100.0);
        }
        rep.note(format!(
            "{kind}: map failure worst-case slowdown {:.1}%, reduce failure worst-case {:.1}%",
            map_s.max_y().unwrap_or(0.0),
            red_s.max_y().unwrap_or(0.0)
        ));
        rep.series.push(map_s);
        rep.series.push(red_s);
    }
    rep
}

/// Fig. 3 — temporal failure amplification timeline (baseline Wordcount,
/// one reducer, crash of the node hosting it and its MOFs).
pub fn fig3(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig3", "Temporal amplification of a node failure (baseline)");
    let spec = SimJobSpec::paper(WorkloadKind::Wordcount, seed);
    let e = env(RecoveryMode::Baseline);
    rep.param("workload", "wordcount").param("reduces", 1).param("seed", seed);
    let victim = node_of_reduce(&spec, &e, 0);
    let r = run_one(
        &spec,
        &e,
        vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: 0.4 }],
    );
    let reduce0 = TaskId::reduce(alm_types::JobId(0), 0);
    let repeats = r.repeated_failures_of(reduce0);
    let mut tl = r.timeline_of(0, "wordcount reduce progress");
    tl.annotate(0.0, format!("node {victim} hosts the single reducer and its local MOFs"));
    rep.note(format!(
        "the single injected node crash became {} failures of the same ReduceTask (temporal amplification); job took {:.1}s",
        repeats + 1,
        r.job_secs
    ));
    rep.note(format!(
        "longest progress stall: {:.1}s (includes the {}s liveness timeout)",
        tl.longest_stall_secs(),
        e.yarn.node_liveness_timeout_ms / 1000
    ));
    rep.timelines.push(tl);
    rep
}

/// Fig. 4 — spatial amplification: one node crash infects healthy reducers.
pub fn fig4(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig4", "Spatial amplification of a node failure (baseline)");
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    let e = env(RecoveryMode::Baseline);
    rep.param("workload", "terasort").param("reduces", spec.num_reduces).param("seed", seed);
    // Crash early in the reduce phase so healthy reducers are still
    // shuffling and depend on the lost MOFs.
    let r = run_one(
        &spec,
        &e,
        vec![SimFault::CrashNodeAtReduceProgress { node: 1, reduce_index: 5, at_progress: 0.05 }],
    );
    let injected: Vec<TaskId> =
        r.failures.iter().filter(|f| f.kind == alm_types::FailureKind::NodeCrash).map(|f| f.task).collect();
    let infected = r.infected_reduces(&injected);
    rep.note(format!(
        "one node crash additionally failed {infected} healthy ReduceTasks (paper observed 6); total failures {}",
        r.failures.len()
    ));
    let mut s = Series::new("failed-reduces-over-time", "time (s)", "cumulative reduce failures");
    let mut count = 0;
    for f in r.failures.iter().filter(|f| f.task.is_reduce()) {
        count += 1;
        s.push(f.at_secs, count as f64);
    }
    rep.series.push(s);
    rep.timelines.push(r.timeline_of(5, "reduce 5 progress"));
    rep
}

/// Fig. 8 — ALG vs YARN under single ReduceTask failures at 10–90%.
pub fn fig8(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig8", "ALG vs YARN: single ReduceTask failure at varying progress");
    rep.param("seed", seed);
    let points: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    for kind in WorkloadKind::ALL {
        let spec = SimJobSpec::paper(kind, seed);
        let clean = run_one(&spec, &env(RecoveryMode::Baseline), vec![]).job_secs;
        let mut yarn_s = Series::new(format!("{kind}-yarn"), "injection progress (%)", "execution time (s)");
        let mut alg_s = Series::new(format!("{kind}-alg"), "injection progress (%)", "execution time (s)");
        let mut gains = Vec::new();
        for &p in &points {
            let fault = vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: p }];
            let yarn = run_one(&spec, &env(RecoveryMode::Baseline), fault.clone());
            let alg = run_one(&spec, &env(RecoveryMode::Alg), fault);
            yarn_s.push(p * 100.0, yarn.job_secs);
            alg_s.push(p * 100.0, alg.job_secs);
            gains.push(improvement_pct(yarn.job_secs, alg.job_secs));
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        let at90 = *gains.last().expect("nine failure points sampled");
        rep.note(format!(
            "{kind}: ALG improves job time by {avg:.1}% on average over 9 failure points ({at90:.1}% at 90%); failure-free reference {clean:.1}s"
        ));
        // Variation across injection points (the predictability argument).
        let spread = |s: &Series| (s.max_y().unwrap_or(0.0) / s.min_y().unwrap_or(1.0) - 1.0) * 100.0;
        rep.note(format!(
            "{kind}: exec-time spread across failure points: YARN {:.1}%, ALG {:.1}%",
            spread(&yarn_s),
            spread(&alg_s)
        ));
        rep.series.push(yarn_s);
        rep.series.push(alg_s);
    }
    rep
}

/// Fig. 9 — SFM vs YARN under node failures at varying reduce progress.
pub fn fig9(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig9", "SFM vs YARN: node failure at varying reduce progress");
    rep.param("seed", seed);
    let points = [0.1, 0.3, 0.5, 0.7, 0.9];
    for kind in WorkloadKind::ALL {
        let spec = SimJobSpec::paper(kind, seed);
        let victim = node_of_reduce(&spec, &env(RecoveryMode::Baseline), 0);
        let mut yarn_s =
            Series::new(format!("{kind}-yarn"), "reduce progress at crash (%)", "execution time (s)");
        let mut sfm_s =
            Series::new(format!("{kind}-sfm"), "reduce progress at crash (%)", "execution time (s)");
        let mut gains = Vec::new();
        for &p in &points {
            let fault =
                vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: p }];
            let yarn = run_one(&spec, &env(RecoveryMode::Baseline), fault.clone());
            let sfm = run_one(&spec, &env(RecoveryMode::Sfm), fault);
            yarn_s.push(p * 100.0, yarn.job_secs);
            sfm_s.push(p * 100.0, sfm.job_secs);
            gains.push(improvement_pct(yarn.job_secs, sfm.job_secs));
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        rep.note(format!("{kind}: SFM shortens migration+recovery by {avg:.1}% on average"));
        rep.series.push(yarn_s);
        rep.series.push(sfm_s);
    }
    rep
}

/// Fig. 10 — SFM eliminates temporal amplification (timeline +
/// proactive-regeneration ablation).
pub fn fig10(seed: u64, proactive: bool) -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig10",
        if proactive {
            "SFM recovery timeline (proactive map regeneration ON)"
        } else {
            "SFM recovery timeline (ablation: proactive regeneration OFF)"
        },
    );
    let spec = SimJobSpec::paper(WorkloadKind::Wordcount, seed);
    let mut e = env(RecoveryMode::Sfm);
    e.alm.proactive_map_regen = proactive;
    rep.param("workload", "wordcount").param("proactive_map_regen", proactive).param("seed", seed);
    let victim = node_of_reduce(&spec, &e, 0);
    let r = run_one(
        &spec,
        &e,
        vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: 0.4 }],
    );
    let reduce0 = TaskId::reduce(alm_types::JobId(0), 0);
    rep.note(format!(
        "repeated failures of the reducer: {} (0 means temporal amplification eliminated); job {:.1}s",
        r.repeated_failures_of(reduce0),
        r.job_secs
    ));
    rep.timelines.push(r.timeline_of(0, "wordcount reduce progress under SFM"));
    rep
}

/// Table II — spatial amplification: YARN vs SFM at 10/20/30% first failure.
pub fn table2(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("table2", "Speculative recovery curbs infectious node failures");
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    rep.param("workload", "terasort").param("seed", seed);
    let mut t = TextTable::new(
        "Table II analogue",
        &["Type", "Point of First Failure", "Additional Failures", "Execution Time"],
    );
    for p in [0.05, 0.10, 0.15] {
        for (name, mode) in [("YARN", RecoveryMode::Baseline), ("SFM", RecoveryMode::Sfm)] {
            let r = run_one(
                &spec,
                &env(mode),
                vec![SimFault::CrashNodeAtReduceProgress { node: 1, reduce_index: 5, at_progress: p }],
            );
            let injected: Vec<TaskId> = r
                .failures
                .iter()
                .filter(|f| f.kind == alm_types::FailureKind::NodeCrash)
                .map(|f| f.task)
                .collect();
            let infected = r.infected_reduces(&injected);
            t.row(&[
                name.to_string(),
                format!("{:.0}%", p * 100.0),
                infected.to_string(),
                format!("{:.0} seconds", r.job_secs),
            ]);
        }
    }
    rep.tables.push(t);
    rep.note(
        "SFM rows must show 0 additional failures; YARN rows show infected healthy reducers".to_string(),
    );
    rep
}

/// Fig. 11 — ALG overhead in failure-free runs, Terasort 10–320 GB.
pub fn fig11(seed: u64, sizes_gb: &[u64]) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig11", "ALG overhead under failure-free execution");
    rep.param("workload", "terasort").param("seed", seed);
    let mut yarn_s = Series::new("yarn", "input size (GB)", "execution time (s)");
    let mut alg_s = Series::new("alg", "input size (GB)", "execution time (s)");
    let mut worst: f64 = 0.0;
    for &gb in sizes_gb {
        let spec = SimJobSpec::new(WorkloadKind::Terasort, gb * GB, 20, seed);
        let y = run_one(&spec, &env(RecoveryMode::Baseline), vec![]);
        let a = run_one(&spec, &env(RecoveryMode::Alg), vec![]);
        yarn_s.push(gb as f64, y.job_secs);
        alg_s.push(gb as f64, a.job_secs);
        worst = worst.max((a.job_secs / y.job_secs - 1.0) * 100.0);
    }
    rep.note(format!("worst-case ALG overhead across sizes: {worst:.1}% (paper: negligible)"));
    rep.series.push(yarn_s);
    rep.series.push(alg_s);
    rep
}

/// Fig. 12 — ALG performance at different logging frequencies.
pub fn fig12(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig12", "ALG at different logging frequencies");
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    rep.param("workload", "terasort").param("seed", seed);
    let mut s = Series::new("alg", "logging interval (s)", "execution time (s)");
    let mut snaps = Series::new("snapshots", "logging interval (s)", "log records written");
    for interval_s in [1u64, 2, 5, 10, 30, 60] {
        let mut e = env(RecoveryMode::Alg);
        e.alm.logging_interval_ms = interval_s * 1000;
        let r = run_one(&spec, &e, vec![]);
        s.push(interval_s as f64, r.job_secs);
        snaps.push(interval_s as f64, r.alg_snapshots as f64);
    }
    let spread = (s.max_y().unwrap_or(0.0) - s.min_y().unwrap_or(0.0)) / s.min_y().unwrap_or(1.0) * 100.0;
    rep.note(format!("execution-time spread across frequencies: {spread:.1}% (paper: insensitive)"));
    rep.series.push(s);
    rep.series.push(snaps);
    rep
}

/// Fig. 13 — impact of log/output replication level on the reduce stage.
pub fn fig13(seed: u64, sizes_gb: &[u64]) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig13", "Replication level impact on the reduce stage (ALG)");
    rep.param("workload", "terasort").param("seed", seed);
    for level in [ReplicationLevel::Node, ReplicationLevel::Rack, ReplicationLevel::Cluster] {
        let mut s =
            Series::new(format!("{level:?}").to_lowercase(), "input size (GB)", "reduce phase time (s)");
        for &gb in sizes_gb {
            let spec = SimJobSpec::new(WorkloadKind::Terasort, gb * GB, 20, seed);
            let mut e = env(RecoveryMode::Alg);
            e.alm.log_replication = level;
            let r = run_one(&spec, &e, vec![]);
            s.push(gb as f64, (r.job_secs - r.map_phase_secs).max(0.0));
        }
        rep.series.push(s);
    }
    let y = |name: &str, gb: f64| rep.series_named(name).and_then(|s| s.y_at(gb)).unwrap_or(0.0);
    if let Some(&biggest) = sizes_gb.last() {
        let g = biggest as f64;
        rep.note(format!(
            "at {biggest} GB: rack-level delays the reduce stage by {:.1}% over node-level, cluster-level by {:.1}% (paper: 18.4% and 55.7%)",
            improvement_pct(y("node", g), y("rack", g)).abs(),
            improvement_pct(y("node", g), y("cluster", g)).abs()
        ));
    }
    rep
}

/// Fig. 14 — SFM recovery of multiple concurrent failures, 1–32 GB per
/// reducer.
pub fn fig14(seed: u64, fcm_cap: Option<usize>) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig14", "SFM vs YARN under concurrent ReduceTask failures");
    rep.param("workload", "terasort").param("seed", seed);
    if let Some(cap) = fcm_cap {
        rep.param("fcm_cap", cap);
    }
    let reduces = 20u32;
    for &concurrent in &[1usize, 5, 10] {
        let mut yarn_s =
            Series::new(format!("yarn-{concurrent}f"), "data per reducer (GB)", "recovery time (s)");
        let mut sfm_s =
            Series::new(format!("sfm-{concurrent}f"), "data per reducer (GB)", "recovery time (s)");
        let mut gains = Vec::new();
        for &per_red_gb in &[1u64, 4, 16, 32] {
            let spec =
                SimJobSpec::new(WorkloadKind::Terasort, per_red_gb * reduces as u64 * GB, reduces, seed);
            // Crash `concurrent` nodes once reduce 0 is mid-reduce.
            let faults: Vec<SimFault> = (0..concurrent)
                .map(|i| SimFault::CrashNodeAtReduceProgress {
                    node: (1 + i as u32) % 20,
                    reduce_index: 0,
                    at_progress: 0.75,
                })
                .collect();
            let mk_env = |mode| {
                let mut e = env(mode);
                if let Some(cap) = fcm_cap {
                    e.alm.fcm_cap = cap;
                }
                e
            };
            let clean = run_one(&spec, &mk_env(RecoveryMode::Baseline), vec![]).job_secs;
            let yarn = run_one(&spec, &mk_env(RecoveryMode::Baseline), faults.clone());
            let sfm = run_one(&spec, &mk_env(RecoveryMode::Sfm), faults);
            let (ry, rs) = ((yarn.job_secs - clean).max(0.0), (sfm.job_secs - clean).max(0.0));
            yarn_s.push(per_red_gb as f64, ry);
            sfm_s.push(per_red_gb as f64, rs);
            gains.push(improvement_pct(ry, rs));
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        rep.note(format!(
            "{concurrent} concurrent failures: SFM cuts recovery time by {avg:.1}% on average (gain at 1 GB {:.1}%, at 32 GB {:.1}%)",
            gains.first().copied().unwrap_or(0.0),
            gains.last().copied().unwrap_or(0.0)
        ));
        rep.series.push(yarn_s);
        rep.series.push(sfm_s);
    }
    rep
}

/// Fig. 15 — SFM alone vs SFM+ALG: the benefit of resuming logged
/// analytics during migration.
pub fn fig15(seed: u64) -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig15", "Benefits of enabling both ALG and SFM");
    rep.param("seed", seed);
    let mut t = TextTable::new(
        "recovery with/without logged analytics",
        &["Workload", "SFM (s)", "SFM+ALG (s)", "Improvement"],
    );
    for kind in WorkloadKind::ALL {
        let spec = SimJobSpec::paper(kind, seed);
        let victim = node_of_reduce(&spec, &env(RecoveryMode::Sfm), 0);
        // Crash mid-reduce so reduce-stage logs exist on the DFS.
        let fault =
            vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: 0.8 }];
        let sfm = run_one(&spec, &env(RecoveryMode::Sfm), fault.clone());
        let both = run_one(&spec, &env(RecoveryMode::SfmAlg), fault);
        let gain = improvement_pct(sfm.job_secs, both.job_secs);
        t.row(&[
            kind.name().to_string(),
            format!("{:.1}", sfm.job_secs),
            format!("{:.1}", both.job_secs),
            format!("{gain:.1}%"),
        ]);
        rep.note(format!("{kind}: SFM+ALG accelerates recovery by {gain:.1}% over SFM-only"));
    }
    rep.tables.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment-level integration tests at paper scale: these assert the
    // *shape* of every headline result. They run in release CI in
    // milliseconds each; debug builds take a few seconds total.

    #[test]
    fn fig1_reduce_failure_dwarfs_map_failures() {
        let rep = fig1(3);
        let maps = rep.series_named("map-failures").unwrap();
        let red = rep.series_named("one-reduce-failure").unwrap();
        let worst_maps = maps.max_y().unwrap();
        let one_red = red.y_at(1.0).unwrap();
        assert!(
            one_red > worst_maps * 2.0,
            "one reduce failure ({one_red:.1}s) must cost more than 200 map failures ({worst_maps:.1}s)"
        );
    }

    #[test]
    fn fig2_reduce_failures_delay_much_more_than_map_failures() {
        let rep = fig2(3);
        let tm = rep.series_named("terasort-map-failure").unwrap().max_y().unwrap();
        let tr = rep.series_named("terasort-reduce-failure").unwrap();
        assert!(tr.max_y().unwrap() > tm.max(1.0) * 3.0);
        // Later reduce failures hurt more than earlier ones.
        assert!(tr.y_at(90.0).unwrap() > tr.y_at(10.0).unwrap());
    }

    #[test]
    fn fig3_temporal_amplification_exists_in_baseline() {
        let rep = fig3(3);
        assert!(
            rep.notes[0].contains("became 2 failures") || rep.notes[0].contains("became 3 failures"),
            "baseline must amplify the single crash into repeated reducer failures: {}",
            rep.notes[0]
        );
        let tl = &rep.timelines[0];
        assert!(tl.longest_stall_secs() >= 70.0, "the stall must cover the 70s detection timeout");
    }

    #[test]
    fn fig10_sfm_eliminates_temporal_amplification() {
        let rep = fig10(3, true);
        assert!(rep.notes[0].starts_with("repeated failures of the reducer: 0"), "{}", rep.notes[0]);
        // Ablation: disabling proactive regeneration brings it back.
        let ablated = fig10(3, false);
        assert!(
            !ablated.notes[0].starts_with("repeated failures of the reducer: 0"),
            "without proactive map regeneration the recovered reducer must fail again: {}",
            ablated.notes[0]
        );
    }

    #[test]
    fn table2_sfm_rows_have_zero_additional_failures() {
        let rep = table2(3);
        let t = &rep.tables[0];
        for row in &t.rows {
            if row[0] == "SFM" {
                assert_eq!(row[2], "0", "SFM must curb infection: {row:?}");
            }
        }
        // At least one YARN row shows infection.
        assert!(t.rows.iter().any(|r| r[0] == "YARN" && r[2] != "0"), "{:?}", t.rows);
    }

    #[test]
    fn fig11_alg_overhead_small() {
        let rep = fig11(3, &[10, 40]);
        let worst: f64 = rep.notes[0]
            .split("overhead across sizes: ")
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(worst < 10.0, "failure-free ALG overhead must stay small: {worst}%");
    }

    #[test]
    fn fig13_replication_order() {
        let rep = fig13(3, &[40, 160]);
        let y = |n: &str| rep.series_named(n).unwrap().y_at(160.0).unwrap();
        assert!(y("node") <= y("rack"), "rack adds overhead over node");
        assert!(y("rack") < y("cluster"), "cluster-level must be the most expensive");
    }
}
