//! Simulation outputs.

use alm_metrics::Timeline;
use alm_types::{FailureKind, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One failure observed by the simulated AM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFailure {
    pub at_secs: f64,
    pub task: TaskId,
    pub attempt_number: u32,
    pub kind: FailureKind,
}

/// Everything one simulated run produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    pub succeeded: bool,
    pub job_secs: f64,
    /// Virtual time the map phase finished (all maps' first completion).
    pub map_phase_secs: f64,
    pub failures: Vec<SimFailure>,
    pub map_attempts: u32,
    // alm-lint: allow(counter-parity) — reduce recovery is validated through fcm_attempts and the per-failure list, not raw attempt totals
    pub reduce_attempts: u32,
    pub fcm_attempts: u32,
    /// Per reduce index: `(secs, overall progress)` samples.
    pub reduce_progress: BTreeMap<u32, Vec<(f64, f64)>>,
    /// Per reduce index: the node each attempt ran on, in attempt order —
    /// lets experiments target "the node hosting reducer r" for crashes.
    pub reduce_nodes: BTreeMap<u32, Vec<u32>>,
    /// Analytics-log snapshots taken.
    // alm-lint: allow(counter-parity) — the runtime's ALG unit is records written (alg_records); snapshots vs records are incommensurable, each engine asserts its own
    pub alg_snapshots: u64,
    /// Fetched chunks that failed arrival checksum validation and were
    /// transparently re-fetched after MOF regeneration (never charged to
    /// the retry budget).
    pub corruption_refetches: u32,
    /// Fetch transfers dropped by gray-degraded links and transparently
    /// re-fetched (never charged to the retry budget).
    pub degraded_drops: u32,
    /// ALG snapshots lost to record rot (recovery truncated at the bad
    /// record and fell back one logging interval).
    // alm-lint: allow(counter-parity) — the runtime reports truncation forensics structurally (log_recoveries → recoveries_bounded()), not as a scalar
    pub log_truncations: u32,
    /// Bytes moved across rack uplinks (replication / cross-rack shuffle).
    // alm-lint: allow(counter-parity) — the threaded runtime has no rack/uplink topology model to mirror this against
    pub uplink_bytes: u64,
    /// Rotten committed-output replicas a verified DFS read skipped over
    /// (each also queued the block for re-replication).
    // alm-lint: allow(counter-parity) — the runtime counterpart is DfsAudit.read_failovers, collected by the campaign harness from SimDfs, not by JobReport
    pub dfs_read_failovers: u32,
    /// Payload bytes the DFS repair pipeline copied to restore the
    /// replication level (the Fig. 13 replica-management axis).
    // alm-lint: allow(counter-parity) — the runtime counterpart is DfsAudit.repair_bytes, collected by the campaign harness from SimDfs, not by JobReport
    pub dfs_repair_bytes: u64,
    /// Corrupt committed-output replicas still un-repaired at end of run.
    // alm-lint: allow(counter-parity) — the runtime counterpart is DfsAudit.corrupt_replicas, collected by the campaign harness from SimDfs, not by JobReport
    pub dfs_corrupt_replicas: u32,
    /// Shuffle fetches served from the resident in-memory MOF cache — the
    /// Stage-1 disk read is skipped entirely (chain-layer memory mode).
    pub resident_fetch_hits: u64,
    /// Resident MOF copies wiped by node crashes (RAM does not survive).
    // alm-lint: allow(counter-parity) — the runtime tracks invalidations in the chain layer's ResidentStore stats, outside JobReport
    pub resident_invalidations: u32,
    /// Events processed (diagnostic).
    // alm-lint: allow(counter-parity) — DES bookkeeping; the threaded runtime has no event loop to count
    pub events: u64,
}

impl SimReport {
    /// Reduce failures of tasks other than those listed (spatial
    /// amplification victims, Table II's "additional failures").
    pub fn infected_reduces(&self, injected: &[TaskId]) -> usize {
        let mut v: Vec<TaskId> = self
            .failures
            .iter()
            .filter(|f| f.task.is_reduce() && !injected.contains(&f.task))
            .map(|f| f.task)
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Total failures beyond the first `injected` (Table II column).
    pub fn additional_failures(&self, injected: usize) -> usize {
        self.failures.len().saturating_sub(injected)
    }

    /// Repeated failures of one task after its first (temporal
    /// amplification).
    pub fn repeated_failures_of(&self, task: TaskId) -> usize {
        self.failures.iter().filter(|f| f.task == task).count().saturating_sub(1)
    }

    /// Build an annotated timeline of one reduce task's progress for the
    /// profiling figures (3, 4, 10).
    pub fn timeline_of(&self, reduce_index: u32, name: impl Into<String>) -> Timeline {
        let mut tl = Timeline::new(name);
        if let Some(samples) = self.reduce_progress.get(&reduce_index) {
            for &(t, p) in samples {
                tl.sample(t, p);
            }
        }
        for f in &self.failures {
            tl.annotate(f.at_secs, format!("{} attempt {} failed: {}", f.task, f.attempt_number, f.kind));
        }
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::JobId;

    #[test]
    fn amplification_queries() {
        let j = JobId(0);
        let (r0, r1) = (TaskId::reduce(j, 0), TaskId::reduce(j, 1));
        let rep = SimReport {
            failures: vec![
                SimFailure { at_secs: 1.0, task: r0, attempt_number: 0, kind: FailureKind::NodeCrash },
                SimFailure {
                    at_secs: 2.0,
                    task: r0,
                    attempt_number: 1,
                    kind: FailureKind::FetchFailureLimit,
                },
                SimFailure {
                    at_secs: 3.0,
                    task: r1,
                    attempt_number: 0,
                    kind: FailureKind::FetchFailureLimit,
                },
            ],
            ..SimReport::default()
        };
        assert_eq!(rep.infected_reduces(&[r0]), 1);
        assert_eq!(rep.additional_failures(1), 2);
        assert_eq!(rep.repeated_failures_of(r0), 1);
    }

    #[test]
    fn timeline_collects_samples_and_annotations() {
        let mut rep = SimReport::default();
        rep.reduce_progress.insert(0, vec![(0.0, 0.0), (10.0, 0.5)]);
        rep.failures.push(SimFailure {
            at_secs: 5.0,
            task: TaskId::reduce(JobId(0), 0),
            attempt_number: 0,
            kind: FailureKind::NodeCrash,
        });
        let tl = rep.timeline_of(0, "reduce 0");
        assert_eq!(tl.samples.len(), 2);
        assert_eq!(tl.annotations.len(), 1);
    }
}
