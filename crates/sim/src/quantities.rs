//! Derived byte/cost quantities: the bridge from a [`SimJobSpec`] and its
//! [`alm_workloads::WorkloadModel`] to the flow sizes and CPU costs the
//! engine schedules.

use alm_types::YarnConfig;
use alm_workloads::WorkloadModel;

use crate::spec::SimJobSpec;

/// All per-task sizes the engine needs, precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantities {
    pub num_maps: u32,
    pub num_reduces: u32,
    /// Bytes of one input split (last split may be smaller; we use the
    /// uniform mean, which is what matters for aggregate behaviour).
    pub split_bytes: u64,
    /// Intermediate bytes produced per map (post-combiner).
    pub map_out_bytes: u64,
    /// Bytes of one (map, reduce) shuffle chunk.
    pub chunk_bytes: u64,
    /// Total shuffled bytes per reducer.
    pub partition_bytes: u64,
    /// Shuffle-buffer memory budget per reducer.
    pub mem_budget: u64,
    /// Bytes a reducer spills to disk during shuffle.
    pub spilled_bytes: u64,
    /// Extra merge passes over the spilled data beyond the factor budget.
    pub merge_rounds: u32,
    /// Final output bytes per reducer.
    pub reduce_out_bytes: u64,
    /// CPU seconds per map (map function + sort).
    pub map_cpu_secs: f64,
    /// CPU seconds per reducer (reduce function over the partition).
    pub reduce_cpu_secs: f64,
    /// CPU seconds per reducer spent purely deserializing records — the
    /// component ALG's log resume avoids re-paying (§V-E).
    pub reduce_deser_secs: f64,
}

impl Quantities {
    pub fn derive(spec: &SimJobSpec, model: &WorkloadModel, yarn: &YarnConfig) -> Quantities {
        let num_maps = ((spec.input_bytes.div_ceil(yarn.dfs_block_size)).max(1)).min(u32::MAX as u64) as u32;
        let num_reduces = spec.num_reduces.max(1);
        let split_bytes = spec.input_bytes / num_maps as u64;
        let intermediate = model.intermediate_bytes(spec.input_bytes);
        let map_out_bytes = intermediate / num_maps as u64;
        let chunk_bytes = (map_out_bytes / num_reduces as u64).max(1);
        let partition_bytes = chunk_bytes * num_maps as u64;
        let mem_budget = yarn.shuffle_buffer_bytes();
        let resident = (mem_budget as f64 * yarn.merge_spill_fraction) as u64;
        let spilled_bytes = partition_bytes.saturating_sub(resident);
        // On-disk segment count: in-memory merges emit ~`resident`-sized
        // runs; chunks larger than a quarter of the budget go to disk
        // directly (mirrors `alm-shuffle`'s fetcher policy).
        let seg_size = if chunk_bytes * 4 > mem_budget { chunk_bytes } else { resident.max(1) };
        let on_disk_segments =
            if spilled_bytes == 0 { 0 } else { (spilled_bytes / seg_size.max(1)).max(1) as usize };
        let merge_rounds = alm_shuffle::merger::merge_rounds(on_disk_segments, yarn.io_sort_factor) as u32;
        let reduce_out_bytes = model.reduce_output_bytes(partition_bytes);
        let gb = 1u64 << 30;
        let map_cpu_secs = split_bytes as f64 / gb as f64 * model.map_cpu_secs_per_gb;
        let reduce_cpu_secs = partition_bytes as f64 / gb as f64 * model.reduce_cpu_secs_per_gb;
        let reduce_deser_secs = model.records_in(partition_bytes) as f64 * model.deser_secs_per_record;
        Quantities {
            num_maps,
            num_reduces,
            split_bytes,
            map_out_bytes,
            chunk_bytes,
            partition_bytes,
            mem_budget,
            spilled_bytes,
            merge_rounds,
            reduce_out_bytes,
            map_cpu_secs,
            reduce_cpu_secs,
            reduce_deser_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimJobSpec;
    use alm_types::units::GB;
    use alm_workloads::WorkloadKind;

    fn q(kind: WorkloadKind, input_gb: u64, reduces: u32) -> Quantities {
        let spec = SimJobSpec::new(kind, input_gb * GB, reduces, 1);
        Quantities::derive(&spec, &kind.model(), &YarnConfig::default())
    }

    #[test]
    fn terasort_100gb_paper_shape() {
        let q = q(WorkloadKind::Terasort, 100, 20);
        assert_eq!(q.num_maps, 800, "100 GB / 128 MB blocks");
        // Identity workload: intermediate == input.
        assert!((q.partition_bytes as f64 - 5.0 * GB as f64).abs() < 0.01 * GB as f64);
        assert!(q.spilled_bytes > 0, "5 GB partitions exceed the 2.8 GB shuffle buffer");
        assert!(q.reduce_out_bytes > 0);
    }

    #[test]
    fn wordcount_shuffles_little() {
        let q = q(WorkloadKind::Wordcount, 10, 1);
        assert!(
            (q.partition_bytes as f64) < 0.1 * 10.0 * GB as f64,
            "combiner collapses wordcount's shuffle: {} bytes",
            q.partition_bytes
        );
    }

    #[test]
    fn conservation_across_tasks() {
        let q = q(WorkloadKind::Terasort, 10, 8);
        let total_chunks = q.chunk_bytes * q.num_maps as u64 * q.num_reduces as u64;
        let total_map_out = q.map_out_bytes * q.num_maps as u64;
        // Rounding loses at most one chunk per map.
        assert!(total_map_out.abs_diff(total_chunks) <= q.num_maps as u64 * q.num_reduces as u64 * 2);
        assert_eq!(q.partition_bytes, q.chunk_bytes * q.num_maps as u64);
    }

    #[test]
    fn small_partition_spills_nothing() {
        let q = q(WorkloadKind::Terasort, 1, 64);
        assert_eq!(q.spilled_bytes, 0);
        assert_eq!(q.merge_rounds, 0);
    }

    #[test]
    fn cpu_costs_scale_with_size() {
        let a = q(WorkloadKind::SecondarySort, 10, 8);
        let b = q(WorkloadKind::SecondarySort, 20, 8);
        assert!(b.reduce_cpu_secs > a.reduce_cpu_secs * 1.5);
        assert!(b.reduce_deser_secs > a.reduce_deser_secs * 1.5);
    }
}
