//! The simulation engine.
//!
//! One [`Simulation`] runs one job on the modelled cluster. Nodes expose
//! four equal-share resources (disk, NIC-in, NIC-out, CPU) plus one shared
//! uplink per rack; tasks are state machines whose phase transitions are
//! driven by flow completions and timers from the `alm-des` kernel. The
//! recovery policies are the *same code* the threaded runtime uses
//! (`alm_core::schedule_recovery`), so the amplification dynamics emerge
//! from mechanism, not curve fitting:
//!
//! * baseline reducers hammer fetch retries against lost MOFs, fail with
//!   `FetchFailureLimit`, and only after enough reports does the AM
//!   re-execute the map — temporal + spatial amplification;
//! * ALM marks lost MOFs as regenerating (reducers wait), relaunches maps
//!   at high priority, resumes reducers from logged progress, and migrates
//!   with in-memory fast collective merging.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use alm_core::{schedule_recovery, ExecMode, PolicyCtx, SchedAction};
use alm_des::{EventQueue, EventToken, FlowId, FlowPool, SimDuration};
use alm_types::{AttemptId, CorruptTarget, FailureKind, FailureReport, JobId, NodeId, TaskId};
use rand::Rng;

use crate::quantities::Quantities;
use crate::spec::{ExperimentEnv, SimFault, SimJobSpec};
use crate::trace::{SimFailure, SimReport};

/// Hadoop's `mapreduce.reduce.shuffle.parallelcopies`.
const MAX_PARALLEL_FETCHES: usize = 5;
/// Deterministic cap on gray-link loss drops per (attempt, map): beyond
/// this the transfer is let through, so `loss = 1.0` cannot livelock.
const MAX_GRAY_DROPS: u32 = 16;
/// Spill granularity during shuffle.
const SPILL_FLOW_BYTES: u64 = 256 << 20;
/// Progress-sampling / trigger-checking cadence.
const SAMPLE_EVERY_NS: u64 = 1_000_000_000;
/// FCM synchronisation overhead before the pipeline starts (§V-B notes the
/// extra coordination cost of FCM).
const FCM_SYNC_SECS: f64 = 1.5;
/// Hard cap on simulated events (runaway guard).
const MAX_EVENTS: u64 = 50_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PoolRef {
    Disk(u32),
    NicIn(u32),
    NicOut(u32),
    Uplink(u32),
}

#[derive(Debug, Clone)]
enum Ev {
    PoolWake(PoolRef),
    LaunchDone(AttemptId),
    FetchRetry { attempt: AttemptId, map: u32 },
    CpuDone { attempt: AttemptId, gen: u32 },
    FcmWaitTimeout { attempt: AttemptId, gen: u32 },
    DetectNode(u32),
    FcmStart(AttemptId),
    Sample,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Purpose {
    MapRead,
    MapWrite,
    /// Stage 1 of a fetch: the source node's disk serves the chunk.
    FetchRead {
        map: u32,
        source: u32,
    },
    /// Stage 2 of a fetch: the chunk crosses the network.
    Fetch {
        map: u32,
        source: u32,
    },
    Spill,
    MergePass,
    ReduceRead,
    Output,
    FcmLocal {
        source: u32,
    },
    FcmNet {
        source: u32,
    },
}

struct FlowInfo {
    attempt: AttemptId,
    purpose: Purpose,
    pool: PoolRef,
}

/// A queued reduce attempt: `(task, pinned node, avoided node, mode,
/// drop_if_pin_unavailable)`. SFM's local-resume attempts are dropped when
/// their pinned node is gone (the speculative attempt covers recovery);
/// ALG-only relaunches fall back to any node instead.
type QueuedReduce = (TaskId, Option<u32>, Option<u32>, ExecMode, bool);

struct SimNode {
    alive: bool,
    rack: u32,
    map_slots_free: u32,
    reduce_slots_free: u32,
    /// Compute-slowdown factor (1.0 = healthy). Raised by an activated
    /// `SimFault::SlowNodeAtSecs`; scales CPU phases started afterwards.
    slow: f64,
}

struct MapTask {
    completed: bool,
    /// Whether the task has EVER completed (regeneration resets
    /// `completed` but not this) — drives first-wave accounting.
    ever_completed: bool,
    attempts: u32,
    kill_at: Option<f64>,
}

struct MapAtt {
    node: u32,
    phase: MapPhase,
    dead: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MapPhase {
    Launching,
    Reading,
    Cpu,
    Writing,
}

struct RedTask {
    completed: bool,
    attempts: u32,
    kill_at: Option<f64>,
    attempts_on_node: HashMap<u32, u32>,
    running: Vec<AttemptId>,
    /// Last ALG-logged snapshot (None until first log).
    logged: Option<LoggedState>,
    /// The snapshot before `logged` — what recovery falls back to when the
    /// newest record rots on disk (checksummed truncation loses at most
    /// one logging interval).
    logged_prev: Option<LoggedState>,
}

#[derive(Debug, Clone)]
struct LoggedState {
    node: u32,
    fetched: BTreeSet<u32>,
    merge_done: bool,
    /// Fraction of reduce-stage work whose results are durable on the DFS.
    reduce_frac: f64,
}

struct RedAtt {
    node: u32,
    mode: ExecMode,
    phase: RedPhase,
    pending: BTreeSet<u32>,
    active_fetches: HashMap<FlowId, u32>,
    fetched: BTreeSet<u32>,
    retry: HashMap<u32, u32>,
    /// Per map index: deterministic loss-draw counter for gray links (the
    /// RNG stream label includes it so every draw is fresh but replayable).
    loss_draws: HashMap<u32, u32>,
    flows: HashSet<FlowId>,
    spill_debt: u64,
    spill_emitted: u64,
    spill_outstanding: usize,
    merge_rounds_left: u32,
    /// Fraction of reduce-stage work skipped thanks to ALG logs.
    resume_reduce_frac: f64,
    /// Total CPU seconds of the reduce stage (reduce fn + deserialization).
    reduce_cpu_secs: f64,
    /// CPU timer of the current reduce/FCM phase.
    cpu_done: bool,
    cpu_start: f64,
    cpu_dur: f64,
    /// Phase generation: stale CPU timers from an interrupted phase are
    /// ignored by comparing this.
    gen: u32,
    last_log_secs: f64,
    /// Virtual time the shuffle became fully parked behind severed links
    /// (None while it can make progress). Bounds never-healing partitions
    /// via `YarnConfig::shuffle_wait_cap_ms`.
    parked_since: Option<f64>,
    dead: bool,
}

/// A reduce attempt's live flows (own + active fetches) in deterministic
/// (FlowId) order; the backing containers are hashed.
fn sorted_flows(att: &RedAtt) -> Vec<FlowId> {
    let mut v: Vec<FlowId> = att.flows.iter().chain(att.active_fetches.keys()).copied().collect();
    v.sort_unstable();
    v
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RedPhase {
    Launching,
    Shuffle,
    Merge,
    Reduce,
    FcmWait,
    Fcm,
}

/// One simulated job run.
pub struct Simulation {
    q: EventQueue<Ev>,
    pools: HashMap<PoolRef, (FlowPool, Option<EventToken>)>,
    flows: HashMap<FlowId, FlowInfo>,
    next_flow: u64,
    nodes: Vec<SimNode>,
    env: ExperimentEnv,
    qty: Quantities,
    maps: Vec<MapTask>,
    reduces: Vec<RedTask>,
    map_atts: HashMap<AttemptId, MapAtt>,
    red_atts: HashMap<AttemptId, RedAtt>,
    mof_loc: HashMap<u32, u32>,
    regenerating: HashSet<u32>,
    fetch_reports: HashMap<u32, u32>,
    queued_maps: VecDeque<TaskId>,
    queued_reduces: VecDeque<QueuedReduce>,
    reduces_dispatched: bool,
    maps_done_once: u32,
    dead_pending: Vec<(u32, Vec<AttemptId>)>,
    faults_time: Vec<(u32, f64)>,
    faults_progress: Vec<(u32, u32, f64)>,
    faults_slow: Vec<(u32, f64, f64)>,
    /// Pending severs/heals as *directed* `(from, to, at_secs)` entries —
    /// expanded from each fault's `LinkDirection` via the shared
    /// `directed_keys` helper, exactly like the runtime's `LinkTable`.
    faults_sever: Vec<(u32, u32, f64)>,
    faults_heal: Vec<(u32, u32, f64)>,
    /// Pending gray-link activations: directed
    /// `(from, to, at_secs, factor, loss)`.
    faults_degrade: Vec<(u32, u32, f64, f64, f64)>,
    faults_undegrade: Vec<(u32, u32, f64)>,
    faults_corrupt: Vec<(u32, CorruptTarget, f64)>,
    /// Currently severed directed links: `(from, to)` means `from` cannot
    /// open a fetch to `to`; an asymmetric partition leaves the reverse
    /// entry absent so heartbeats and reverse fetches stay healthy.
    severed: BTreeSet<(u32, u32)>,
    /// Currently degraded directed links: `(from, to)` → `(factor, loss)`.
    degraded: BTreeMap<(u32, u32), (f64, f64)>,
    /// Armed MOF rot: `(map_index, reduce partition)` whose next arriving
    /// chunk fails checksum validation. Consumed on observation (the
    /// high-priority regeneration rewrites clean bytes).
    corrupt_mofs: BTreeSet<(u32, u32)>,
    /// Armed committed-output rot: `(reduce_index, block)` whose verified
    /// read will detect a rotten replica, fail over, and re-replicate —
    /// settled into the DFS counters at end of run, mirroring the chaos
    /// harness's post-job verification read + `repair()` on the runtime.
    corrupt_dfs_blocks: BTreeSet<(u32, u32)>,
    /// Chain-layer memory mode: completed maps keep their MOF resident in
    /// RAM on the producing node, so fetches skip the Stage-1 disk read.
    mem_resident: bool,
    /// Map indices whose MOF is currently resident (on `mof_loc[m]`).
    resident_mofs: BTreeSet<u32>,
    seed: u64,
    report: SimReport,
    rr: u32,
    failed: bool,
    job: JobId,
}

impl Simulation {
    pub fn new(spec: SimJobSpec, env: ExperimentEnv, faults: Vec<SimFault>) -> Simulation {
        let model = spec.workload.model();
        let seed = spec.seed;
        let qty = Quantities::derive(&spec, &model, &env.yarn);
        let workers = env.cluster.worker_nodes();
        let racks = env.cluster.racks.max(1);
        let nodes: Vec<SimNode> = (0..workers)
            .map(|n| SimNode {
                alive: true,
                rack: n % racks,
                map_slots_free: env.cluster.map_slots_per_node,
                reduce_slots_free: env.cluster.reduce_slots_per_node,
                slow: 1.0,
            })
            .collect();
        let mut pools = HashMap::new();
        for n in 0..workers {
            pools.insert(PoolRef::Disk(n), (FlowPool::new(env.cluster.disk_read_bandwidth), None));
            pools.insert(PoolRef::NicIn(n), (FlowPool::new(env.cluster.nic_bandwidth), None));
            pools.insert(PoolRef::NicOut(n), (FlowPool::new(env.cluster.nic_bandwidth), None));
        }
        for r in 0..racks {
            pools.insert(PoolRef::Uplink(r), (FlowPool::new(env.cluster.rack_uplink_bandwidth), None));
        }

        let mut maps: Vec<MapTask> = (0..qty.num_maps)
            .map(|_| MapTask { completed: false, ever_completed: false, attempts: 0, kill_at: None })
            .collect();
        let mut reduces: Vec<RedTask> = (0..qty.num_reduces)
            .map(|_| RedTask {
                completed: false,
                attempts: 0,
                kill_at: None,
                attempts_on_node: HashMap::new(),
                running: Vec::new(),
                logged: None,
                logged_prev: None,
            })
            .collect();

        let mut faults_time = Vec::new();
        let mut faults_progress = Vec::new();
        let mut faults_slow = Vec::new();
        let mut faults_sever = Vec::new();
        let mut faults_heal = Vec::new();
        let mut faults_degrade = Vec::new();
        let mut faults_undegrade = Vec::new();
        let mut faults_corrupt = Vec::new();
        for f in &faults {
            match f {
                SimFault::KillReduceAtProgress { reduce_index, at_progress } => {
                    if let Some(r) = reduces.get_mut(*reduce_index as usize) {
                        r.kill_at = Some(*at_progress);
                    }
                }
                SimFault::KillMapAtProgress { map_index, at_progress } => {
                    if let Some(m) = maps.get_mut(*map_index as usize) {
                        m.kill_at = Some(*at_progress);
                    }
                }
                SimFault::CrashNodeAtSecs { node, at_secs } => faults_time.push((*node, *at_secs)),
                SimFault::CrashNodeAtReduceProgress { node, reduce_index, at_progress } => {
                    faults_progress.push((*node, *reduce_index, *at_progress))
                }
                SimFault::SlowNodeAtSecs { node, at_secs, factor } => {
                    faults_slow.push((*node, *at_secs, factor.max(1.0)))
                }
                SimFault::PartitionLinkAtSecs { a, b, direction, from_secs, heal_secs } => {
                    for (from, to) in direction.directed_keys(*a, *b) {
                        faults_sever.push((from, to, *from_secs));
                        faults_heal.push((from, to, heal_secs.max(*from_secs)));
                    }
                }
                SimFault::DegradedLinkAtSecs { a, b, direction, from_secs, heal_secs, factor, loss } => {
                    for (from, to) in direction.directed_keys(*a, *b) {
                        faults_degrade.push((from, to, *from_secs, factor.max(1.0), loss.clamp(0.0, 1.0)));
                        faults_undegrade.push((from, to, heal_secs.max(*from_secs)));
                    }
                }
                SimFault::CorruptDataAtSecs { node, target, at_secs } => {
                    faults_corrupt.push((*node, *target, *at_secs))
                }
            }
        }

        Simulation {
            q: EventQueue::new(),
            pools,
            flows: HashMap::new(),
            next_flow: 0,
            nodes,
            env,
            qty,
            maps,
            reduces,
            map_atts: HashMap::new(),
            red_atts: HashMap::new(),
            mof_loc: HashMap::new(),
            regenerating: HashSet::new(),
            fetch_reports: HashMap::new(),
            queued_maps: VecDeque::new(),
            queued_reduces: VecDeque::new(),
            reduces_dispatched: false,
            maps_done_once: 0,
            dead_pending: Vec::new(),
            faults_time,
            faults_progress,
            faults_slow,
            faults_sever,
            faults_heal,
            faults_degrade,
            faults_undegrade,
            faults_corrupt,
            severed: BTreeSet::new(),
            degraded: BTreeMap::new(),
            corrupt_mofs: BTreeSet::new(),
            corrupt_dfs_blocks: BTreeSet::new(),
            mem_resident: false,
            resident_mofs: BTreeSet::new(),
            seed,
            report: SimReport::default(),
            rr: 0,
            failed: false,
            job: JobId(0),
        }
    }

    /// Chain-layer memory mode: keep every completed map's MOF resident in
    /// RAM on its producing node. Fetches from a live source then skip the
    /// Stage-1 disk read (memory-speed shuffle); a node crash wipes the
    /// node's resident copies, after which fetches fall back to the normal
    /// disk / regeneration paths.
    pub fn with_resident_mofs(mut self) -> Simulation {
        self.mem_resident = true;
        self
    }

    fn now_secs(&self) -> f64 {
        self.q.now().as_secs_f64()
    }

    /// Whether `from` can currently not open a fetch connection to `to`
    /// (directed; a node always reaches itself). Under an asymmetric
    /// partition only the cut direction is severed.
    fn link_severed(&self, from: u32, to: u32) -> bool {
        from != to && self.severed.contains(&(from, to))
    }

    /// The gray-link `(factor, loss)` for fetches `from → to`, when
    /// degraded (a node's path to itself is never degraded).
    fn link_degradation(&self, from: u32, to: u32) -> Option<(f64, f64)> {
        if from == to {
            return None;
        }
        self.degraded.get(&(from, to)).copied()
    }

    /// Exponential backoff with deterministic seeded jitter for dead-source
    /// fetch retries — the same shape as the threaded runtime's
    /// `backoff_with_jitter`: doubles per round, capped at half the liveness
    /// timeout, jittered into `[cap/2, cap]` from the engine RNG stream
    /// (never wall clock, so runs stay replayable).
    fn backoff_ms(&self, attempt: AttemptId, m: u32, round: u32) -> u64 {
        let base = self.env.yarn.fetch_retry_delay_ms.max(1);
        let exp = base.saturating_mul(1u64 << round.saturating_sub(1).min(10));
        let cap = exp.min((self.env.yarn.node_liveness_timeout_ms / 2).max(base));
        let mut rng = alm_des::rng::stream(self.seed, &format!("sim-fetch-backoff/{attempt}/{m}/{round}"));
        cap / 2 + rng.random_range(0..=cap.div_ceil(2))
    }

    // ---------------- pools and flows ----------------

    fn reschedule_pool(&mut self, p: PoolRef) {
        let (pool, wake) = self.pools.get_mut(&p).expect("pool exists");
        if let Some(tok) = wake.take() {
            self.q.cancel(tok);
        }
        if let Some((_, when)) = pool.next_completion() {
            *wake = Some(self.q.schedule_at(when, Ev::PoolWake(p)));
        }
    }

    fn start_flow(&mut self, p: PoolRef, bytes: u64, attempt: AttemptId, purpose: Purpose) -> FlowId {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let now = self.q.now();
        {
            let (pool, _) = self.pools.get_mut(&p).expect("pool exists");
            pool.advance_to(now);
            pool.add(id, bytes);
        }
        self.flows.insert(id, FlowInfo { attempt, purpose, pool: p });
        self.reschedule_pool(p);
        if matches!(p, PoolRef::Uplink(_)) {
            self.report.uplink_bytes += bytes;
        }
        id
    }

    /// Abort a flow, returning its remaining bytes (None if unknown).
    fn abort_flow(&mut self, id: FlowId) -> Option<u64> {
        let info = self.flows.remove(&id)?;
        let now = self.q.now();
        let (pool, _) = self.pools.get_mut(&info.pool).expect("pool exists");
        pool.advance_to(now);
        let remaining = pool.remove(id);
        self.reschedule_pool(info.pool);
        remaining
    }

    fn pool_wake(&mut self, p: PoolRef) {
        let now = self.q.now();
        let done = {
            let (pool, wake) = self.pools.get_mut(&p).expect("pool exists");
            *wake = None;
            pool.advance_to(now);
            pool.drain_completed()
        };
        for id in done {
            if let Some(info) = self.flows.remove(&id) {
                self.flow_done(id, info);
            }
        }
        self.reschedule_pool(p);
    }

    // ---------------- scheduling ----------------

    fn pick_node(&mut self, reduce: bool, avoid: Option<u32>, pin: Option<u32>) -> Option<u32> {
        if let Some(p) = pin {
            let n = &self.nodes[p as usize];
            let free = if reduce { n.reduce_slots_free } else { n.map_slots_free };
            if n.alive && free > 0 {
                return Some(p);
            }
            return None;
        }
        let count = self.nodes.len() as u32;
        let alive = self.nodes.iter().filter(|n| n.alive).count();
        for _ in 0..count {
            let id = self.rr % count;
            self.rr += 1;
            let n = &self.nodes[id as usize];
            if !n.alive {
                continue;
            }
            if avoid == Some(id) && alive > 1 {
                continue;
            }
            let free = if reduce { n.reduce_slots_free } else { n.map_slots_free };
            if free > 0 {
                return Some(id);
            }
        }
        None
    }

    fn enqueue_map(&mut self, task: TaskId, high_priority: bool) {
        if high_priority {
            self.queued_maps.push_front(task);
        } else {
            self.queued_maps.push_back(task);
        }
    }

    fn dispatch(&mut self) {
        // Maps first (they hold the job back), then reduces.
        let mut requeue = VecDeque::new();
        while let Some(task) = self.queued_maps.pop_front() {
            if self.maps[task.index as usize].completed {
                continue;
            }
            match self.pick_node(false, None, None) {
                Some(node) => self.launch_map(task, node),
                None => {
                    requeue.push_back(task);
                    break;
                }
            }
        }
        while let Some(t) = self.queued_maps.pop_front() {
            requeue.push_back(t);
        }
        self.queued_maps = requeue;

        let mut requeue = VecDeque::new();
        while let Some((task, pin, avoid, mode, drop_on_pin_fail)) = self.queued_reduces.pop_front() {
            if self.reduces[task.index as usize].completed {
                continue;
            }
            match self.pick_node(true, avoid, pin) {
                Some(node) => self.launch_reduce(task, node, mode),
                None => match pin {
                    Some(p) if drop_on_pin_fail => {
                        // SFM local resume with its node gone/busy: drop it;
                        // the speculative attempt covers recovery.
                        let _ = p;
                        continue;
                    }
                    Some(_) => {
                        // ALG relaunch: fall back to any node (losing the
                        // local files but keeping DFS-logged progress).
                        requeue.push_back((task, None, avoid, mode, false));
                    }
                    None => {
                        requeue.push_back((task, pin, avoid, mode, drop_on_pin_fail));
                        break;
                    }
                },
            }
        }
        while let Some(t) = self.queued_reduces.pop_front() {
            requeue.push_back(t);
        }
        self.queued_reduces = requeue;
    }

    fn launch_map(&mut self, task: TaskId, node: u32) {
        let st = &mut self.maps[task.index as usize];
        let attempt = task.attempt(st.attempts);
        st.attempts += 1;
        self.report.map_attempts += 1;
        self.nodes[node as usize].map_slots_free -= 1;
        self.map_atts.insert(attempt, MapAtt { node, phase: MapPhase::Launching, dead: false });
        let d = SimDuration::from_ms(self.env.cluster.container_launch_ms);
        self.q.schedule_after(d, Ev::LaunchDone(attempt));
    }

    fn launch_reduce(&mut self, task: TaskId, node: u32, mode: ExecMode) {
        let st = &mut self.reduces[task.index as usize];
        let attempt = task.attempt(st.attempts);
        st.attempts += 1;
        *st.attempts_on_node.entry(node).or_insert(0) += 1;
        st.running.push(attempt);
        self.report.reduce_attempts += 1;
        if mode == ExecMode::Fcm {
            self.report.fcm_attempts += 1;
        }
        self.report.reduce_nodes.entry(task.index).or_default().push(node);
        self.nodes[node as usize].reduce_slots_free -= 1;

        // Recovery state from logs, if any and usable from `node`.
        let logs = self.env.alm.mode.logs_enabled();
        let logged = self.reduces[task.index as usize].logged.clone();
        let (pending, fetched, merge_done, resume_frac) = match (logs, logged) {
            (true, Some(l)) => {
                if l.node == node {
                    // Local resume: shuffle/merge state on the local store
                    // plus DFS reduce-stage progress.
                    let pending: BTreeSet<u32> =
                        (0..self.qty.num_maps).filter(|m| !l.fetched.contains(m)).collect();
                    (pending, l.fetched, l.merge_done, l.reduce_frac)
                } else {
                    // Migrated: only the DFS-held reduce-stage progress.
                    ((0..self.qty.num_maps).collect(), BTreeSet::new(), false, l.reduce_frac)
                }
            }
            _ => ((0..self.qty.num_maps).collect(), BTreeSet::new(), false, 0.0),
        };

        let reduce_cpu_secs = self.qty.reduce_cpu_secs + self.qty.reduce_deser_secs;
        self.red_atts.insert(
            attempt,
            RedAtt {
                node,
                mode,
                phase: RedPhase::Launching,
                pending,
                active_fetches: HashMap::new(),
                fetched,
                retry: HashMap::new(),
                loss_draws: HashMap::new(),
                flows: HashSet::new(),
                spill_debt: 0,
                spill_emitted: 0,
                spill_outstanding: 0,
                merge_rounds_left: if merge_done { 0 } else { self.qty.merge_rounds },
                resume_reduce_frac: resume_frac,
                reduce_cpu_secs,
                cpu_done: false,
                cpu_start: 0.0,
                cpu_dur: 0.0,
                gen: 0,
                last_log_secs: self.now_secs(),
                parked_since: None,
                dead: false,
            },
        );
        let d = SimDuration::from_ms(self.env.cluster.container_launch_ms);
        self.q.schedule_after(d, Ev::LaunchDone(attempt));
    }

    // ---------------- map lifecycle ----------------

    fn map_launch_done(&mut self, attempt: AttemptId) {
        let Some(att) = self.map_atts.get_mut(&attempt) else { return };
        if att.dead {
            return;
        }
        att.phase = MapPhase::Reading;
        let node = att.node;
        let bytes = self.qty.split_bytes;
        self.start_flow(PoolRef::Disk(node), bytes, attempt, Purpose::MapRead);
    }

    fn map_flow_done(&mut self, attempt: AttemptId, purpose: Purpose) {
        let Some(att) = self.map_atts.get_mut(&attempt) else { return };
        if att.dead {
            return;
        }
        match purpose {
            Purpose::MapRead => {
                att.phase = MapPhase::Cpu;
                let slow = self.nodes[att.node as usize].slow;
                let d = SimDuration::from_secs_f64((self.qty.map_cpu_secs * slow).max(1e-6));
                self.q.schedule_after(d, Ev::CpuDone { attempt, gen: 0 });
            }
            Purpose::MapWrite => self.map_completed(attempt),
            _ => unreachable!("map flows only"),
        }
    }

    fn map_cpu_done(&mut self, attempt: AttemptId) {
        let Some(att) = self.map_atts.get_mut(&attempt) else { return };
        if att.dead || att.phase != MapPhase::Cpu {
            return;
        }
        att.phase = MapPhase::Writing;
        let node = att.node;
        let bytes = self.qty.map_out_bytes;
        self.start_flow(PoolRef::Disk(node), bytes, attempt, Purpose::MapWrite);
    }

    fn red_cpu_done(&mut self, attempt: AttemptId, gen: u32) {
        let finished = {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            if att.dead || att.gen != gen || !matches!(att.phase, RedPhase::Reduce | RedPhase::Fcm) {
                return;
            }
            att.cpu_done = true;
            att.flows.is_empty()
        };
        if finished {
            self.reduce_completed(attempt);
        }
    }

    /// Start the reduce-stage CPU timer for the un-resumed fraction.
    fn start_reduce_cpu(&mut self, attempt: AttemptId, frac: f64) {
        let (gen, dur) = {
            let slow = {
                let node = self.red_atts[&attempt].node;
                self.nodes[node as usize].slow
            };
            let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
            att.cpu_done = false;
            att.cpu_start = self.q.now().as_secs_f64();
            att.cpu_dur = (att.reduce_cpu_secs * frac * slow).max(1e-6);
            (att.gen, att.cpu_dur)
        };
        self.q.schedule_after(SimDuration::from_secs_f64(dur), Ev::CpuDone { attempt, gen });
    }

    fn map_completed(&mut self, attempt: AttemptId) {
        let att = self.map_atts.remove(&attempt).expect("attempt exists");
        self.nodes[att.node as usize].map_slots_free += 1;
        let task = &mut self.maps[attempt.task.index as usize];
        let first = !task.ever_completed;
        task.completed = true;
        task.ever_completed = true;
        self.mof_loc.insert(attempt.task.index, att.node);
        if self.mem_resident {
            self.resident_mofs.insert(attempt.task.index);
        }
        self.regenerating.remove(&attempt.task.index);
        if first {
            self.maps_done_once += 1;
            if self.maps_done_once == self.qty.num_maps {
                self.report.map_phase_secs = self.now_secs();
            }
        }
        // Wake reducers waiting on this MOF.
        let m = attempt.task.index;
        let mut waiting: Vec<AttemptId> = self
            .red_atts
            .iter()
            .filter(|(_, a)| {
                !a.dead
                    && ((a.phase == RedPhase::Shuffle && a.pending.contains(&m))
                        || a.phase == RedPhase::FcmWait)
            })
            .map(|(id, _)| *id)
            .collect();
        waiting.sort_unstable(); // hash order must not leak into flow scheduling
        for r in waiting {
            match self.red_atts[&r].phase {
                RedPhase::Shuffle => self.pump_fetches(r),
                RedPhase::FcmWait => self.try_start_fcm(r),
                _ => {}
            }
        }
        self.launch_reduces_if_due();
        self.dispatch();
    }

    fn launch_reduces_if_due(&mut self) {
        if self.reduces_dispatched {
            return;
        }
        let wave = (self.nodes.len() as u32 * self.env.cluster.map_slots_per_node).min(self.qty.num_maps);
        if self.maps_done_once >= wave {
            self.reduces_dispatched = true;
            for r in 0..self.qty.num_reduces {
                self.queued_reduces.push_back((
                    TaskId::reduce(self.job, r),
                    None,
                    None,
                    ExecMode::Regular,
                    false,
                ));
            }
            self.dispatch();
        }
    }

    // ---------------- reduce lifecycle ----------------

    fn red_launch_done(&mut self, attempt: AttemptId) {
        let Some(att) = self.red_atts.get_mut(&attempt) else { return };
        if att.dead {
            return;
        }
        match att.mode {
            ExecMode::Regular => {
                att.phase = RedPhase::Shuffle;
                if att.pending.is_empty() {
                    self.maybe_finish_shuffle(attempt);
                } else {
                    self.pump_fetches(attempt);
                }
            }
            ExecMode::Fcm => {
                att.phase = RedPhase::FcmWait;
                let gen = att.gen;
                // Give up waiting for MOFs after the FCM teardown window:
                // the AM then re-executes the missing maps and retries.
                let d = SimDuration::from_ms(self.env.alm.fcm_teardown_timeout_ms);
                self.q.schedule_after(d, Ev::FcmWaitTimeout { attempt, gen });
                self.try_start_fcm(attempt);
            }
        }
    }

    /// Start fetch flows up to the parallelism limit.
    fn pump_fetches(&mut self, attempt: AttemptId) {
        loop {
            let (node, candidate) = {
                let Some(att) = self.red_atts.get(&attempt) else { return };
                if att.dead || att.phase != RedPhase::Shuffle {
                    return;
                }
                if att.active_fetches.len() >= MAX_PARALLEL_FETCHES {
                    return;
                }
                // First pending map whose MOF is registered and not already
                // being retried on a timer.
                let candidate = att.pending.iter().copied().find(|m| {
                    self.mof_loc.contains_key(m) && !att.retry.contains_key(m) && {
                        let src = self.mof_loc[m];
                        if self.nodes[src as usize].alive {
                            // A severed link parks the fetch: the source
                            // still heartbeats, so charging the wait to the
                            // retry budget would be §II-C's amplification
                            // mistake. The heal event re-pumps us.
                            !self.link_severed(att.node, src)
                        } else {
                            !self.regenerating.contains(m)
                        }
                    }
                });
                (att.node, candidate)
            };
            let Some(m) = candidate else {
                self.maybe_finish_shuffle(attempt);
                return;
            };
            let src = self.mof_loc[&m];
            if !self.nodes[src as usize].alive {
                if self.regenerating.contains(&m) {
                    // Wait for the high-priority regeneration; the map
                    // completion will re-pump us.
                    return;
                }
                // Dead source: burn a retry.
                self.fetch_failed(attempt, m, src);
                continue;
            }
            // Resident shortcut: a live source holding the MOF in RAM
            // serves it at memory speed — the chunk goes straight onto the
            // network, skipping the Stage-1 disk read that makes shuffles
            // lag map completions. This is what the chain layer buys.
            if self.resident_mofs.contains(&m) {
                self.report.resident_fetch_hits += 1;
                let dst_rack = self.nodes[node as usize].rack;
                let src_rack = self.nodes[src as usize].rack;
                let pool =
                    if src_rack != dst_rack { PoolRef::Uplink(dst_rack) } else { PoolRef::NicIn(node) };
                let bytes = match self.link_degradation(node, src) {
                    Some((factor, _)) if factor > 1.0 => (self.qty.chunk_bytes as f64 * factor) as u64,
                    _ => self.qty.chunk_bytes,
                };
                let net = self.start_flow(pool, bytes, attempt, Purpose::Fetch { map: m, source: src });
                let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
                att.pending.remove(&m);
                att.active_fetches.insert(net, m);
                continue;
            }
            // Stage 1: the source disk serves the chunk (this is what makes
            // the shuffle lag map completions under map-phase disk pressure,
            // leaving un-fetched MOFs for a crash to strand — §II-C).
            let flow = self.start_flow(
                PoolRef::Disk(src),
                self.qty.chunk_bytes,
                attempt,
                Purpose::FetchRead { map: m, source: src },
            );
            let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
            att.pending.remove(&m);
            att.active_fetches.insert(flow, m);
        }
    }

    /// Stage 1 done: move the chunk onto the network.
    fn fetch_read_done(&mut self, attempt: AttemptId, flow: FlowId, m: u32, src: u32) {
        let node = {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            if att.dead {
                return;
            }
            att.active_fetches.remove(&flow);
            att.node
        };
        let dst_rack = self.nodes[node as usize].rack;
        let src_rack = self.nodes[src as usize].rack;
        let pool = if src_rack != dst_rack { PoolRef::Uplink(dst_rack) } else { PoolRef::NicIn(node) };
        // A gray-degraded fetcher → source direction stretches the transfer
        // by its factor (flow bytes scale; spill accounting keys off
        // `fetched.len()`, so the stretch never inflates spills).
        let bytes = match self.link_degradation(node, src) {
            Some((factor, _)) if factor > 1.0 => (self.qty.chunk_bytes as f64 * factor) as u64,
            _ => self.qty.chunk_bytes,
        };
        let net = self.start_flow(pool, bytes, attempt, Purpose::Fetch { map: m, source: src });
        let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
        att.active_fetches.insert(net, m);
    }

    fn fetch_failed(&mut self, attempt: AttemptId, m: u32, src: u32) {
        *self.fetch_reports.entry(m).or_insert(0) += 1;
        if self.env.alm.mode.sfm_enabled() {
            // SFM: the AM knows the cause; regenerate at high priority and
            // have the reducer wait (no retry treadmill, no preemption).
            if !self.regenerating.contains(&m) && !self.nodes[src as usize].alive {
                self.regenerating.insert(m);
                self.maps[m as usize].completed = false;
                self.enqueue_map(TaskId::map(self.job, m), true);
                self.dispatch();
            }
        }

        let Some(att) = self.red_atts.get_mut(&attempt) else { return };
        let tries = att.retry.entry(m).or_insert(0);
        *tries += 1;
        let round = *tries;
        if round > self.env.yarn.fetch_retries_per_source {
            // Exhausted: the reducer is preempted as faulty. Only now does
            // baseline YARN learn which MOFs are gone ("YARN relies on
            // running ReduceTasks to detect the lost MOFs", §II-C): the
            // maps this attempt was stuck on are finally re-executed.
            if !self.env.alm.mode.sfm_enabled() {
                let mut stuck: Vec<u32> = att
                    .retry
                    .keys()
                    .copied()
                    .filter(|m| self.mof_loc.get(m).is_some_and(|&s| !self.nodes[s as usize].alive))
                    .collect();
                stuck.sort_unstable(); // deterministic re-execution order
                for m in stuck {
                    if !self.regenerating.contains(&m) {
                        self.regenerating.insert(m);
                        self.maps[m as usize].completed = false;
                        self.enqueue_map(TaskId::map(self.job, m), false);
                    }
                }
            }
            self.fail_attempt(attempt, FailureKind::FetchFailureLimit);
            self.dispatch();
            return;
        }
        let d = SimDuration::from_ms(self.backoff_ms(attempt, m, round));
        self.q.schedule_after(d, Ev::FetchRetry { attempt, map: m });
    }

    fn fetch_retry(&mut self, attempt: AttemptId, m: u32) {
        let Some(att) = self.red_atts.get(&attempt) else { return };
        if att.dead || att.phase != RedPhase::Shuffle || !att.pending.contains(&m) {
            return;
        }
        let Some(&src) = self.mof_loc.get(&m) else {
            // MOF unregistered (regenerating): clear the retry state and
            // wait for the map completion.
            self.red_atts.get_mut(&attempt).expect("fetch retry for dead attempt").retry.remove(&m);
            return;
        };
        if self.nodes[src as usize].alive {
            self.red_atts.get_mut(&attempt).expect("fetch retry for dead attempt").retry.remove(&m);
            self.pump_fetches(attempt);
        } else if self.regenerating.contains(&m) {
            self.red_atts.get_mut(&attempt).expect("fetch retry for dead attempt").retry.remove(&m);
        } else {
            self.fetch_failed(attempt, m, src);
        }
    }

    fn fetch_flow_done(&mut self, attempt: AttemptId, flow: FlowId, m: u32, src: u32) {
        // Gray loss: a degraded fetcher → source direction drops the
        // arriving transfer with probability `loss`. The source heartbeats
        // and the cause is unambiguous, so the reducer transparently
        // re-fetches — no fetch-failure report, no retry-budget burn (the
        // mirror of the runtime's `FetchDegraded` path). The draw comes
        // from a labelled engine RNG stream with a per-(attempt, map)
        // counter, so replays are bit-identical; a deterministic drop cap
        // keeps pathological `loss = 1` schedules from livelocking.
        if let Some((_, loss)) =
            self.link_degradation(self.red_atts.get(&attempt).map_or(src, |a| a.node), src)
        {
            if loss > 0.0 {
                let dropped = {
                    let Some(att) = self.red_atts.get_mut(&attempt) else { return };
                    if att.dead {
                        return;
                    }
                    let k = att.loss_draws.entry(m).or_insert(0);
                    let draw_ok = *k < MAX_GRAY_DROPS;
                    *k += 1;
                    let label = format!("sim-degraded-loss/{attempt}/{m}/{k}");
                    let mut rng = alm_des::rng::stream(self.seed, &label);
                    if draw_ok && rng.random_range(0..1_000_000u64) < (loss * 1e6) as u64 {
                        att.active_fetches.remove(&flow);
                        att.pending.insert(m);
                        true
                    } else {
                        false
                    }
                };
                if dropped {
                    self.report.degraded_drops += 1;
                    self.pump_fetches(attempt);
                    return;
                }
            }
        }
        // Checksum validation on arrival: an armed corruption of this MOF
        // partition fails the frame check. The reducer reports it (no retry
        // budget burned — the source heartbeats, so the cause is
        // unambiguous) and the AM regenerates the map at high priority;
        // the completion re-pumps the parked fetch against clean bytes.
        // A resident copy is exempt: it was CRC-framed into RAM at map
        // completion, before the rot landed on disk (mirroring the runtime
        // fetcher, which consults the resident cache before the disk path).
        if self.corrupt_mofs.contains(&(m, attempt.task.index)) && !self.resident_mofs.contains(&m) {
            {
                let Some(att) = self.red_atts.get_mut(&attempt) else { return };
                if att.dead {
                    return;
                }
                att.active_fetches.remove(&flow);
                att.pending.insert(m);
            }
            self.corrupt_mofs.remove(&(m, attempt.task.index));
            self.report.corruption_refetches += 1;
            if !self.regenerating.contains(&m) {
                self.regenerating.insert(m);
                self.mof_loc.remove(&m); // unregistered until regenerated
                self.maps[m as usize].completed = false;
                self.enqueue_map(TaskId::map(self.job, m), true);
                self.dispatch();
            }
            return;
        }
        {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            if att.dead {
                return;
            }
            att.active_fetches.remove(&flow);
            att.fetched.insert(m);
            att.retry.remove(&m);
            // Spill accounting: beyond the resident budget, fetched bytes
            // belong on disk.
            let total_fetched = att.fetched.len() as u64 * self.qty.chunk_bytes;
            let resident = (self.qty.mem_budget as f64 * self.env.yarn.merge_spill_fraction) as u64;
            att.spill_debt = total_fetched.saturating_sub(resident).min(self.qty.spilled_bytes);
        }
        self.start_due_spills(attempt);
        self.pump_fetches(attempt);
    }

    /// Emit disk flows for any spill debt not yet covered, in
    /// `SPILL_FLOW_BYTES` chunks (the background in-memory merger's flushes).
    fn start_due_spills(&mut self, attempt: AttemptId) {
        loop {
            let (node, chunk) = {
                let Some(att) = self.red_atts.get_mut(&attempt) else { return };
                if att.spill_debt <= att.spill_emitted {
                    return;
                }
                let chunk = (att.spill_debt - att.spill_emitted).min(SPILL_FLOW_BYTES);
                // Flush only full chunks mid-shuffle; the remainder flushes
                // when the shuffle finishes.
                if chunk < SPILL_FLOW_BYTES && !(att.pending.is_empty() && att.active_fetches.is_empty()) {
                    return;
                }
                att.spill_emitted += chunk;
                att.spill_outstanding += 1;
                (att.node, chunk)
            };
            self.start_flow(PoolRef::Disk(node), chunk, attempt, Purpose::Spill);
        }
    }

    fn maybe_finish_shuffle(&mut self, attempt: AttemptId) {
        self.start_due_spills(attempt);
        let ready = {
            let Some(att) = self.red_atts.get(&attempt) else { return };
            att.phase == RedPhase::Shuffle
                && att.pending.is_empty()
                && att.active_fetches.is_empty()
                && att.flows.is_empty()
        };
        if ready {
            self.enter_merge(attempt);
        }
    }

    fn enter_merge(&mut self, attempt: AttemptId) {
        let (node, rounds) = {
            let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
            att.phase = RedPhase::Merge;
            (att.node, att.merge_rounds_left)
        };
        if rounds == 0 {
            self.enter_reduce(attempt);
            return;
        }
        // One merge pass = read + write the spilled data.
        let bytes = self.qty.spilled_bytes.saturating_mul(2).max(1);
        let flow = self.start_flow(PoolRef::Disk(node), bytes, attempt, Purpose::MergePass);
        self.red_atts.get_mut(&attempt).expect("merge pass for dead attempt").flows.insert(flow);
    }

    fn merge_pass_done(&mut self, attempt: AttemptId, flow: FlowId) {
        let rounds = {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            att.flows.remove(&flow);
            att.merge_rounds_left = att.merge_rounds_left.saturating_sub(1);
            att.merge_rounds_left
        };
        if rounds == 0 {
            self.enter_reduce(attempt);
        } else {
            self.enter_merge(attempt);
        }
    }

    fn enter_reduce(&mut self, attempt: AttemptId) {
        let (node, resume) = {
            let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
            att.phase = RedPhase::Reduce;
            (att.node, att.resume_reduce_frac)
        };
        let frac = (1.0 - resume).clamp(0.0, 1.0);
        // Concurrent flows of the reduce stage: disk re-read of spilled
        // runs, CPU (reduce fn + deserialization), output replication.
        let mut flows = Vec::new();
        let disk_read = (self.qty.spilled_bytes as f64 * frac) as u64;
        if disk_read > 0 {
            flows.push(self.start_flow(PoolRef::Disk(node), disk_read, attempt, Purpose::ReduceRead));
        }
        self.start_reduce_cpu(attempt, frac);
        flows.extend(self.output_flows(attempt, node, (self.qty.reduce_out_bytes as f64 * frac) as u64));
        let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
        att.flows.extend(flows);
        // Degenerate case: nothing to read/write and CPU may already be due.
        self.maybe_finish_reduce(attempt);
    }

    fn maybe_finish_reduce(&mut self, attempt: AttemptId) {
        let finished = {
            let Some(att) = self.red_atts.get(&attempt) else { return };
            matches!(att.phase, RedPhase::Reduce | RedPhase::Fcm) && att.flows.is_empty() && att.cpu_done
        };
        if finished {
            self.reduce_completed(attempt);
        }
    }

    /// DFS output-replication flows for `bytes` at the configured level.
    fn output_flows(&mut self, attempt: AttemptId, node: u32, bytes: u64) -> Vec<FlowId> {
        if bytes == 0 {
            return Vec::new();
        }
        let level = if self.env.alm.mode.logs_enabled() {
            self.env.alm.log_replication
        } else {
            alm_types::ReplicationLevel::Cluster // stock HDFS placement
        };
        let replicas = level.replica_count(self.env.yarn.dfs_replication) as u64;
        let mut flows = Vec::new();
        // Local replica: disk write.
        flows.push(self.start_flow(PoolRef::Disk(node), bytes, attempt, Purpose::Output));
        if replicas > 1 {
            let remote_bytes = bytes * (replicas - 1);
            let workers = self.nodes.len() as u32;
            let racks = self.env.cluster.racks.max(1);
            // Remote replica traffic leaves via our NIC...
            flows.push(self.start_flow(PoolRef::NicOut(node), remote_bytes, attempt, Purpose::Output));
            // ...lands on the replica node's disk...
            let replica_node = if level == alm_types::ReplicationLevel::Cluster && racks > 1 {
                (node + 1) % workers // adjacent index = other rack (round-robin racks)
            } else {
                (node + racks) % workers // same-rack peer
            };
            flows.push(self.start_flow(PoolRef::Disk(replica_node), remote_bytes, attempt, Purpose::Output));
            if level == alm_types::ReplicationLevel::Cluster && racks > 1 {
                // ...and crosses the rack uplink at cluster level.
                let rack = self.nodes[node as usize].rack;
                flows.push(self.start_flow(PoolRef::Uplink(rack), remote_bytes, attempt, Purpose::Output));
            }
        }
        flows
    }

    fn reduce_flow_done(&mut self, attempt: AttemptId, flow: FlowId) {
        let finished = {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            att.flows.remove(&flow);
            att.flows.is_empty() && att.cpu_done && matches!(att.phase, RedPhase::Reduce | RedPhase::Fcm)
        };
        if finished {
            self.reduce_completed(attempt);
        }
    }

    fn spill_flow_done(&mut self, attempt: AttemptId) {
        if let Some(att) = self.red_atts.get_mut(&attempt) {
            att.spill_outstanding = att.spill_outstanding.saturating_sub(1);
        }
        self.maybe_finish_shuffle(attempt);
    }

    fn reduce_completed(&mut self, attempt: AttemptId) {
        let att = self.red_atts.remove(&attempt).expect("attempt exists");
        self.nodes[att.node as usize].reduce_slots_free += 1;
        let task = &mut self.reduces[attempt.task.index as usize];
        task.running.retain(|a| *a != attempt);
        if task.completed {
            return;
        }
        task.completed = true;
        // Cancel sibling attempts (speculative duplicates).
        let siblings: Vec<AttemptId> = task.running.drain(..).collect();
        for s in siblings {
            self.kill_attempt_silently(s);
        }
        if self.reduces.iter().all(|r| r.completed) {
            self.report.succeeded = true;
            self.report.job_secs = self.now_secs();
        }
        self.dispatch();
    }

    // ---------------- FCM ----------------

    fn try_start_fcm(&mut self, attempt: AttemptId) {
        let ready = (0..self.qty.num_maps)
            .all(|m| self.mof_loc.get(&m).is_some_and(|&n| self.nodes[n as usize].alive));
        if !ready {
            return;
        }
        {
            let Some(att) = self.red_atts.get_mut(&attempt) else { return };
            if att.dead || att.phase != RedPhase::FcmWait {
                return;
            }
            att.phase = RedPhase::Fcm; // claimed; flows start after sync delay
        }
        let d = SimDuration::from_secs_f64(FCM_SYNC_SECS);
        self.q.schedule_after(d, Ev::FcmStart(attempt));
    }

    /// The FCM attempt waited too long for MOF availability (only possible
    /// when proactive regeneration is disabled or regeneration keeps
    /// failing): the AM finally re-executes the missing maps and fails the
    /// attempt so recovery retries.
    fn fcm_wait_timeout(&mut self, attempt: AttemptId, gen: u32) {
        {
            let Some(att) = self.red_atts.get(&attempt) else { return };
            if att.dead || att.gen != gen || att.phase != RedPhase::FcmWait {
                return;
            }
        }
        let missing: Vec<u32> = (0..self.qty.num_maps)
            .filter(|m| !self.mof_loc.get(m).is_some_and(|&n| self.nodes[n as usize].alive))
            .collect();
        for m in missing {
            if !self.regenerating.contains(&m) {
                self.regenerating.insert(m);
                self.maps[m as usize].completed = false;
                self.enqueue_map(TaskId::map(self.job, m), false);
            }
        }
        self.fail_attempt(attempt, FailureKind::TaskTimeout);
        self.dispatch();
    }

    fn fcm_start(&mut self, attempt: AttemptId) {
        let (node, resume) = {
            let Some(att) = self.red_atts.get(&attempt) else { return };
            if att.dead || att.phase != RedPhase::Fcm {
                return;
            }
            (att.node, att.resume_reduce_frac)
        };
        // Bytes per source node for this partition.
        let mut per_node: BTreeMap<u32, u64> = BTreeMap::new();
        for m in 0..self.qty.num_maps {
            if let Some(&src) = self.mof_loc.get(&m) {
                *per_node.entry(src).or_insert(0) += self.qty.chunk_bytes;
            }
        }
        let frac = (1.0 - resume).clamp(0.0, 1.0);
        let mut flows = Vec::new();
        let dst_rack = self.nodes[node as usize].rack;
        for (src, bytes) in per_node {
            // Participant-side pre-merge read...
            flows.push(self.start_flow(
                PoolRef::Disk(src),
                bytes,
                attempt,
                Purpose::FcmLocal { source: src },
            ));
            // ...streamed to the recovering reducer (all in memory, no
            // reducer-side disk at all — FCM's defining property).
            let src_rack = self.nodes[src as usize].rack;
            let pool = if src_rack != dst_rack { PoolRef::Uplink(dst_rack) } else { PoolRef::NicIn(node) };
            flows.push(self.start_flow(pool, bytes, attempt, Purpose::FcmNet { source: src }));
        }
        // Reduce CPU for the un-resumed fraction; with ALG the deser cost
        // of the resumed fraction is skipped too.
        self.start_reduce_cpu(attempt, frac);
        flows.extend(self.output_flows(attempt, node, (self.qty.reduce_out_bytes as f64 * frac) as u64));
        let att = self.red_atts.get_mut(&attempt).expect("attempt exists");
        att.flows.extend(flows);
        self.maybe_finish_reduce(attempt);
    }

    // ---------------- failures & recovery ----------------

    /// Flows owned by `attempt`, in deterministic (FlowId) order — the
    /// backing map is hashed, and abort order must not vary across runs.
    fn flows_of(&self, attempt: AttemptId) -> Vec<FlowId> {
        let mut v: Vec<FlowId> =
            self.flows.iter().filter(|(_, i)| i.attempt == attempt).map(|(f, _)| *f).collect();
        v.sort_unstable();
        v
    }

    fn kill_attempt_silently(&mut self, attempt: AttemptId) {
        if attempt.task.is_reduce() {
            if let Some(att) = self.red_atts.remove(&attempt) {
                for f in sorted_flows(&att) {
                    self.abort_flow(f);
                }
                if self.nodes[att.node as usize].alive {
                    self.nodes[att.node as usize].reduce_slots_free += 1;
                }
                self.reduces[attempt.task.index as usize].running.retain(|a| *a != attempt);
            }
        } else if let Some(att) = self.map_atts.remove(&attempt) {
            // Any flows of this attempt are aborted by scan.
            for f in self.flows_of(attempt) {
                self.abort_flow(f);
            }
            if self.nodes[att.node as usize].alive {
                self.nodes[att.node as usize].map_slots_free += 1;
            }
        }
    }

    fn fail_attempt(&mut self, attempt: AttemptId, kind: FailureKind) {
        // Transient kinds are absorbed before they can fail an attempt:
        // slow nodes keep heartbeating, partitioned fetches park, corrupt
        // chunks re-fetch against their checksum. Recording one here would
        // corrupt every downstream amplification count.
        debug_assert!(
            !matches!(
                kind,
                FailureKind::SlowNode | FailureKind::NetworkPartition | FailureKind::DataCorruption
            ),
            "transient kind {kind:?} must not be recorded as an attempt failure"
        );
        let node = if attempt.task.is_reduce() {
            self.red_atts.get(&attempt).map(|a| a.node)
        } else {
            self.map_atts.get(&attempt).map(|a| a.node)
        };
        let Some(node) = node else { return };
        self.kill_attempt_silently(attempt);
        self.report.failures.push(SimFailure {
            at_secs: self.now_secs(),
            task: attempt.task,
            attempt_number: attempt.number,
            kind,
        });
        self.recover(attempt.task, node, kind, self.nodes[node as usize].alive);
    }

    fn recover(&mut self, task: TaskId, node: u32, kind: FailureKind, node_alive: bool) {
        // Attempt budget.
        let attempts = if task.is_reduce() {
            self.reduces[task.index as usize].attempts
        } else {
            self.maps[task.index as usize].attempts
        };
        if attempts >= self.env.yarn.max_task_attempts {
            self.failed = true;
            return;
        }

        if self.env.alm.mode.sfm_enabled() {
            let mut report = FailureReport::task_failure(NodeId(node), kind, task);
            report.node_alive = node_alive;
            let mut ctx = PolicyCtx::new(&self.env.alm, self.fcm_running());
            if task.is_reduce() {
                let st = &self.reduces[task.index as usize];
                ctx.attempts_on_source_node
                    .insert(task, st.attempts_on_node.get(&node).copied().unwrap_or(0));
                ctx.running_attempts.insert(task, st.running.len() as u32);
            }
            let actions = schedule_recovery(&report, &ctx);
            self.execute_actions(actions, node);
        } else if task.is_map() {
            self.maps[task.index as usize].completed = false;
            self.enqueue_map(task, false);
        } else {
            // ALG (without SFM): "re-launch the same ReduceTask on the
            // original node to resume from the logs" when that node lives.
            let pin = if self.env.alm.mode.logs_enabled() {
                self.reduces[task.index as usize]
                    .logged
                    .as_ref()
                    .filter(|l| self.nodes[l.node as usize].alive)
                    .map(|l| l.node)
            } else {
                None
            };
            self.queued_reduces.push_back((task, pin, None, ExecMode::Regular, false));
        }
        self.dispatch();
    }

    fn fcm_running(&self) -> usize {
        self.red_atts.values().filter(|a| a.mode == ExecMode::Fcm && !a.dead).count()
    }

    fn execute_actions(&mut self, actions: Vec<SchedAction>, _source: u32) {
        for a in actions {
            match a {
                SchedAction::LaunchMap { task, .. } => {
                    self.regenerating.insert(task.index);
                    self.maps[task.index as usize].completed = false;
                    self.enqueue_map(task, true);
                }
                SchedAction::RelaunchReduceOnOrigin { task, node } => {
                    self.queued_reduces.push_front((task, Some(node.0), None, ExecMode::Regular, true));
                }
                SchedAction::LaunchSpeculativeReduce { task, mode, avoid } => {
                    self.queued_reduces.push_back((task, None, avoid.map(|n| n.0), mode, false));
                }
            }
        }
        self.dispatch();
    }

    fn crash_node(&mut self, node: u32) {
        if !self.nodes[node as usize].alive {
            return;
        }
        self.nodes[node as usize].alive = false;

        // RAM does not survive a crash: wipe the node's resident MOF
        // copies so later fetches fall back to disk / regeneration.
        let lost: Vec<u32> =
            self.resident_mofs.iter().copied().filter(|m| self.mof_loc.get(m) == Some(&node)).collect();
        for m in lost {
            self.resident_mofs.remove(&m);
            self.report.resident_invalidations += 1;
        }

        // All flows touching this node die: flows on its pools, and fetch /
        // FCM flows sourced from it (pooled elsewhere).
        let mut doomed: Vec<(FlowId, AttemptId, Purpose)> = self
            .flows
            .iter()
            .filter(|(_, i)| {
                matches!(
                    i.pool,
                    PoolRef::Disk(n) | PoolRef::NicIn(n) | PoolRef::NicOut(n) if n == node
                ) || matches!(i.purpose, Purpose::Fetch { source, .. } | Purpose::FetchRead { source, .. } | Purpose::FcmLocal { source } | Purpose::FcmNet { source } if source == node)
            })
            .map(|(f, i)| (*f, i.attempt, i.purpose))
            .collect();
        // Deterministic processing order: re-pipelined replica writes
        // allocate fresh FlowIds and interrupted fetches queue retries, so
        // hash order here would make otherwise-identical runs diverge.
        doomed.sort_unstable_by_key(|(f, _, _)| *f);

        let mut interrupted_fetches: Vec<(AttemptId, u32, u32)> = Vec::new();
        let mut interrupted_fcm: BTreeSet<AttemptId> = BTreeSet::new();
        for (f, attempt, purpose) in doomed {
            let remaining = self.abort_flow(f);
            // Flows owned by attempts on OTHER nodes need follow-up.
            let owner_node = if attempt.task.is_reduce() {
                self.red_atts.get(&attempt).map(|a| a.node)
            } else {
                self.map_atts.get(&attempt).map(|a| a.node)
            };
            if owner_node == Some(node) {
                continue; // the attempt itself dies below
            }
            match purpose {
                Purpose::Fetch { map, source } | Purpose::FetchRead { map, source } if source == node => {
                    if let Some(att) = self.red_atts.get_mut(&attempt) {
                        att.active_fetches.remove(&f);
                        att.pending.insert(map);
                    }
                    interrupted_fetches.push((attempt, map, source));
                }
                Purpose::FcmLocal { .. } | Purpose::FcmNet { .. } => {
                    interrupted_fcm.insert(attempt);
                }
                Purpose::Output => {
                    // A replica write targeting the dead node's disk: the
                    // DFS re-pipelines it to another live node.
                    let owner = owner_node.expect("owner is alive");
                    let replacement = (0..self.nodes.len() as u32)
                        .map(|i| (node + 1 + i) % self.nodes.len() as u32)
                        .find(|&n| self.nodes[n as usize].alive && n != owner);
                    if let (Some(repl), Some(bytes)) = (replacement, remaining) {
                        let nf = self.start_flow(PoolRef::Disk(repl), bytes, attempt, Purpose::Output);
                        if let Some(att) = self.red_atts.get_mut(&attempt) {
                            att.flows.remove(&f);
                            att.flows.insert(nf);
                        }
                    } else if let Some(att) = self.red_atts.get_mut(&attempt) {
                        // No live replacement: drop to a single replica.
                        att.flows.remove(&f);
                    }
                }
                _ => {}
            }
        }

        // Attempts hosted on the node die silently; the AM learns later.
        let mut dead_reds: Vec<AttemptId> =
            self.red_atts.iter().filter(|(_, a)| a.node == node && !a.dead).map(|(id, _)| *id).collect();
        dead_reds.sort_unstable();
        let mut dead_maps: Vec<AttemptId> =
            self.map_atts.iter().filter(|(_, a)| a.node == node && !a.dead).map(|(id, _)| *id).collect();
        dead_maps.sort_unstable();
        for &a in &dead_reds {
            let att = self.red_atts.get_mut(&a).expect("attempt vanished mid-crash");
            att.dead = true;
            let flow_ids = sorted_flows(att);
            for f in flow_ids {
                self.abort_flow(f);
            }
        }
        for &a in &dead_maps {
            self.map_atts.get_mut(&a).expect("attempt vanished mid-crash").dead = true;
            for f in self.flows_of(a) {
                self.abort_flow(f);
            }
        }
        let mut dead: Vec<AttemptId> = dead_reds;
        dead.extend(dead_maps);
        self.dead_pending.push((node, dead));

        // Reducers that were fetching from the crashed node begin the retry
        // treadmill immediately (their connections broke).
        for (attempt, map, source) in interrupted_fetches {
            self.fetch_failed(attempt, map, source);
        }
        // FCM recoveries fed by the node restart their wait.
        for a in interrupted_fcm {
            if let Some(att) = self.red_atts.get_mut(&a) {
                if att.dead {
                    continue;
                }
                let mut drained: Vec<FlowId> = att.flows.drain().collect();
                drained.sort_unstable();
                att.phase = RedPhase::FcmWait;
                att.gen += 1; // invalidate the in-flight CPU timer
                att.cpu_done = false;
                for f in drained {
                    self.abort_flow(f);
                }
                self.try_start_fcm(a);
            }
        }

        // Detection after the liveness timeout.
        let d = SimDuration::from_ms(self.env.yarn.node_liveness_timeout_ms);
        self.q.schedule_after(d, Ev::DetectNode(node));
    }

    fn detect_node(&mut self, node: u32) {
        let Some(pos) = self.dead_pending.iter().position(|(n, _)| *n == node) else { return };
        let (_, dead) = self.dead_pending.remove(pos);

        let mut failed_reduces = Vec::new();
        let mut failed_maps = Vec::new();
        for a in dead {
            let done = if a.task.is_reduce() {
                self.reduces[a.task.index as usize].completed
            } else {
                self.maps[a.task.index as usize].completed
            };
            // Clean up the dead attempt records.
            if a.task.is_reduce() {
                self.red_atts.remove(&a);
                self.reduces[a.task.index as usize].running.retain(|x| *x != a);
            } else {
                self.map_atts.remove(&a);
            }
            if done {
                continue;
            }
            self.report.failures.push(SimFailure {
                at_secs: self.now_secs(),
                task: a.task,
                attempt_number: a.number,
                kind: FailureKind::NodeCrash,
            });
            if a.task.is_reduce() {
                failed_reduces.push(a.task);
            } else {
                failed_maps.push(a.task);
            }
        }

        let mut lost_mofs: Vec<u32> =
            self.mof_loc.iter().filter(|(_, n)| **n == node).map(|(m, _)| *m).collect();
        lost_mofs.sort_unstable(); // report/regeneration order must not be hash order

        if self.env.alm.mode.sfm_enabled() {
            let lost_tasks: Vec<TaskId> = if self.env.alm.proactive_map_regen {
                lost_mofs.iter().map(|&m| TaskId::map(self.job, m)).collect()
            } else {
                Vec::new()
            };
            let report = FailureReport::node_crash(
                NodeId(node),
                failed_reduces.iter().chain(failed_maps.iter()).copied(),
                lost_tasks,
            );
            let mut ctx = PolicyCtx::new(&self.env.alm, self.fcm_running());
            for r in &report.failed_reduces {
                let st = &self.reduces[r.index as usize];
                ctx.attempts_on_source_node.insert(*r, st.attempts_on_node.get(&node).copied().unwrap_or(0));
                ctx.running_attempts.insert(*r, st.running.len() as u32);
            }
            let over_budget = report
                .failed_reduces
                .iter()
                .any(|r| self.reduces[r.index as usize].attempts >= self.env.yarn.max_task_attempts);
            if over_budget {
                self.failed = true;
                return;
            }
            let actions = schedule_recovery(&report, &ctx);
            self.execute_actions(actions, node);
        } else {
            for t in failed_maps {
                self.maps[t.index as usize].completed = false;
                self.enqueue_map(t, false);
            }
            for t in failed_reduces {
                if self.reduces[t.index as usize].attempts >= self.env.yarn.max_task_attempts {
                    self.failed = true;
                    return;
                }
                self.queued_reduces.push_back((t, None, None, ExecMode::Regular, false));
            }
            self.dispatch();
        }
    }

    // ---------------- progress / sampling / logging ----------------

    fn red_progress(&self, attempt: AttemptId, att: &RedAtt) -> f64 {
        match att.phase {
            RedPhase::Launching => 0.0,
            RedPhase::Shuffle => {
                let f = att.fetched.len() as f64 / self.qty.num_maps.max(1) as f64;
                f / 3.0
            }
            RedPhase::Merge => {
                let total = self.qty.merge_rounds.max(1) as f64;
                let done = (self.qty.merge_rounds - att.merge_rounds_left) as f64;
                1.0 / 3.0 + (done / total) / 3.0
            }
            RedPhase::Reduce | RedPhase::Fcm => {
                // The CPU timer drives reduce-stage progress.
                let frac_of_rest = if att.cpu_done {
                    1.0
                } else if att.cpu_dur <= 0.0 {
                    0.0
                } else {
                    ((self.q.now().as_secs_f64() - att.cpu_start) / att.cpu_dur).clamp(0.0, 1.0)
                };
                let frac = att.resume_reduce_frac + (1.0 - att.resume_reduce_frac) * frac_of_rest;
                let _ = attempt;
                2.0 / 3.0 + frac / 3.0
            }
            RedPhase::FcmWait => 0.0, // waiting for MOF regeneration
        }
    }

    fn sample(&mut self) {
        let now = self.now_secs();
        // Progress per reduce task = best running attempt (0 if none).
        let mut progress: BTreeMap<u32, f64> = BTreeMap::new();
        let mut atts: Vec<(AttemptId, f64, u32)> = self
            .red_atts
            .iter()
            .filter(|(_, a)| !a.dead)
            .map(|(id, a)| (*id, self.red_progress(*id, a), a.node))
            .collect();
        atts.sort_unstable_by_key(|(id, _, _)| *id); // kill-trigger order must not be hash order
        for (id, p, _) in &atts {
            let e = progress.entry(id.task.index).or_insert(0.0);
            *e = e.max(*p);
        }
        for r in 0..self.qty.num_reduces {
            let p = if self.reduces[r as usize].completed { 1.0 } else { *progress.get(&r).unwrap_or(&0.0) };
            self.report.reduce_progress.entry(r).or_default().push((now, p));
        }

        // Progress-triggered node crashes.
        let due: Vec<u32> = self
            .faults_progress
            .iter()
            .filter(|(_, r, p)| {
                progress.get(r).copied().unwrap_or(0.0) >= *p || self.reduces[*r as usize].completed
            })
            .map(|(n, _, _)| *n)
            .collect();
        self.faults_progress.retain(|(n, _, _)| !due.contains(n));
        for n in due {
            self.crash_node(n);
        }

        // Kill triggers (injected OOMs) on attempt 0.
        let mut to_kill: Vec<AttemptId> = Vec::new();
        for (id, p, _) in &atts {
            if id.number == 0 {
                if let Some(k) = self.reduces[id.task.index as usize].kill_at {
                    if *p >= k {
                        to_kill.push(*id);
                    }
                }
            }
        }
        let mut live_map_ids: Vec<AttemptId> =
            self.map_atts.iter().filter(|(id, a)| id.number == 0 && !a.dead).map(|(id, _)| *id).collect();
        live_map_ids.sort_unstable();
        for id in live_map_ids {
            let att = &self.map_atts[&id];
            if let Some(k) = self.maps[id.task.index as usize].kill_at {
                let p = match att.phase {
                    MapPhase::Launching => 0.0,
                    MapPhase::Reading => 0.15,
                    MapPhase::Cpu => 0.5,
                    MapPhase::Writing => 0.85,
                };
                if p >= k {
                    to_kill.push(id);
                }
            }
        }
        to_kill.sort_unstable(); // reduce triggers collected above are unsorted
        for id in to_kill {
            // Clear the trigger so recovery attempts are not re-killed.
            if id.task.is_reduce() {
                self.reduces[id.task.index as usize].kill_at = None;
            } else {
                self.maps[id.task.index as usize].kill_at = None;
            }
            self.fail_attempt(id, FailureKind::TaskOom);
        }

        // ALG logging ticks: snapshot running reducers' progress.
        if self.env.alm.mode.logs_enabled() {
            let interval = self.env.alm.logging_interval_ms as f64 / 1000.0;
            let snapshots: Vec<(AttemptId, LoggedState)> = self
                .red_atts
                .iter()
                .filter(|(_, a)| !a.dead && now - a.last_log_secs >= interval)
                .map(|(id, a)| {
                    let overall = self.red_progress(*id, a);
                    let reduce_frac = ((overall - 2.0 / 3.0) * 3.0).clamp(0.0, 1.0);
                    (
                        *id,
                        LoggedState {
                            node: a.node,
                            fetched: a.fetched.clone(),
                            merge_done: matches!(a.phase, RedPhase::Reduce | RedPhase::Fcm),
                            reduce_frac,
                        },
                    )
                })
                .collect();
            let mut snapshots = snapshots;
            snapshots.sort_unstable_by_key(|(id, _)| *id);
            for (id, snap) in snapshots {
                self.red_atts.get_mut(&id).expect("snapshot for dead attempt").last_log_secs = now;
                let task = &mut self.reduces[id.task.index as usize];
                // Never regress durable progress.
                let keep = task.logged.as_ref().is_some_and(|old| {
                    old.reduce_frac > snap.reduce_frac && old.fetched.len() >= snap.fetched.len()
                });
                if !keep {
                    task.logged_prev = task.logged.take();
                    task.logged = Some(snap);
                }
                self.report.alg_snapshots += 1;
            }
        }

        // Transient partitions: sever due links, then heal due ones (a
        // window that opened and closed within one tick nets healed), then
        // re-pump the shuffles a heal may have unparked.
        let due: Vec<(u32, u32)> =
            self.faults_sever.iter().filter(|(.., at)| *at <= now).map(|(f, t, _)| (*f, *t)).collect();
        self.faults_sever.retain(|(.., at)| *at > now);
        for (from, to) in due {
            if from != to {
                self.severed.insert((from, to));
            }
        }
        let due: Vec<(u32, u32)> =
            self.faults_heal.iter().filter(|(.., at)| *at <= now).map(|(f, t, _)| (*f, *t)).collect();
        self.faults_heal.retain(|(.., at)| *at > now);
        let healed = !due.is_empty();
        for (from, to) in due {
            // Healing an already-healed (or never-severed) direction is an
            // explicit no-op, same as the runtime's `LinkTable::heal`.
            self.severed.remove(&(from, to));
        }

        // Gray-link activations and clears. Degraded links never park a
        // fetch (bytes still flow), so no re-pump is needed here.
        let due: Vec<(u32, u32, f64, f64)> = self
            .faults_degrade
            .iter()
            .filter(|(.., at, _, _)| *at <= now)
            .map(|(f, t, _, fac, loss)| (*f, *t, *fac, *loss))
            .collect();
        self.faults_degrade.retain(|(.., at, _, _)| *at > now);
        for (from, to, factor, loss) in due {
            if from != to {
                self.degraded.insert((from, to), (factor, loss));
            }
        }
        let due: Vec<(u32, u32)> =
            self.faults_undegrade.iter().filter(|(.., at)| *at <= now).map(|(f, t, _)| (*f, *t)).collect();
        self.faults_undegrade.retain(|(.., at)| *at > now);
        for (from, to) in due {
            self.degraded.remove(&(from, to));
        }
        if healed {
            let mut stuck: Vec<AttemptId> = self
                .red_atts
                .iter()
                .filter(|(_, a)| !a.dead && a.phase == RedPhase::Shuffle)
                .map(|(id, _)| *id)
                .collect();
            stuck.sort_unstable(); // hash order must not leak into flow scheduling
            for id in stuck {
                self.pump_fetches(id);
            }
        }

        // Data corruption: arm MOF rot for arrival-time checksum failures;
        // an ALG-record rot truncates the newest snapshot (recovery falls
        // back one logging interval). Corruptions of records that do not
        // exist yet stay pending and retry next tick, like the runtime's.
        let mut keep = Vec::new();
        for (node, target, at) in std::mem::take(&mut self.faults_corrupt) {
            if at > now {
                keep.push((node, target, at));
                continue;
            }
            match target {
                CorruptTarget::MofPartition { map_index, partition } => {
                    let _ = node; // the artifact's host is implied by mof_loc
                    self.corrupt_mofs.insert((map_index, partition));
                }
                CorruptTarget::AlgRecord { reduce_index, .. } => {
                    match self.reduces.get_mut(reduce_index as usize) {
                        Some(r) if r.logged.is_some() => {
                            r.logged = r.logged_prev.take();
                            self.report.log_truncations += 1;
                        }
                        Some(_) => keep.push((node, target, at)),
                        None => {}
                    }
                }
                CorruptTarget::DfsBlock { reduce_index, block } => {
                    match self.reduces.get(reduce_index as usize) {
                        // The output exists only once the reduce committed.
                        Some(r) if r.completed => {
                            self.corrupt_dfs_blocks.insert((reduce_index, block));
                        }
                        Some(_) => keep.push((node, target, at)),
                        None => {}
                    }
                }
            }
        }
        self.faults_corrupt = keep;

        // Shuffles fully parked behind severed links time out at the
        // shuffle wait cap — the bound on never-healing partitions.
        let cap_secs = self.env.yarn.shuffle_wait_cap_ms as f64 / 1000.0;
        let parked: Vec<(AttemptId, bool)> = self
            .red_atts
            .iter()
            .filter(|(_, a)| !a.dead && a.phase == RedPhase::Shuffle)
            .map(|(id, a)| {
                let idle = !a.pending.is_empty()
                    && a.active_fetches.is_empty()
                    && a.retry.is_empty()
                    && a.flows.is_empty();
                let blocked_by_link = idle && {
                    let mut saw_severed = false;
                    for m in &a.pending {
                        match self.mof_loc.get(m) {
                            None => {}                                          // map not finished yet: a normal wait
                            Some(&src) if !self.nodes[src as usize].alive => {} // regeneration wait
                            Some(&src) if self.link_severed(a.node, src) => saw_severed = true,
                            Some(_) => return (*id, false), // a fetchable source exists
                        }
                    }
                    saw_severed
                };
                (*id, blocked_by_link)
            })
            .collect();
        let mut timed_out: Vec<AttemptId> = Vec::new();
        for (id, blocked) in parked {
            let att = self.red_atts.get_mut(&id).expect("parked attempt vanished");
            if blocked {
                let since = *att.parked_since.get_or_insert(now);
                if now - since > cap_secs {
                    timed_out.push(id);
                }
            } else {
                att.parked_since = None;
            }
        }
        timed_out.sort_unstable();
        for id in timed_out {
            self.fail_attempt(id, FailureKind::TaskTimeout);
        }

        // Time-based crash faults.
        let due: Vec<u32> = self.faults_time.iter().filter(|(_, at)| *at <= now).map(|(n, _)| *n).collect();
        self.faults_time.retain(|(_, at)| *at > now);
        for n in due {
            self.crash_node(n);
        }

        // Slow-node degradations: activate once due; CPU phases scheduled
        // from then on are stretched by the factor.
        let due_slow: Vec<(u32, f64)> =
            self.faults_slow.iter().filter(|(_, at, _)| *at <= now).map(|(n, _, f)| (*n, *f)).collect();
        self.faults_slow.retain(|(_, at, _)| *at > now);
        for (n, f) in due_slow {
            if let Some(node) = self.nodes.get_mut(n as usize) {
                node.slow = node.slow.max(f);
            }
        }
    }

    /// Diagnostic dump of live state (enabled via `ALM_SIM_DEBUG`).
    fn dump_state(&self, why: &str) {
        eprintln!("--- sim stall dump ({why}) at t={:.1}s ---", self.now_secs());
        eprintln!("queued maps: {}, queued reduces: {:?}", self.queued_maps.len(), self.queued_reduces);
        eprintln!("regenerating: {:?}", self.regenerating);
        let mut reds: Vec<_> = self.red_atts.iter().collect();
        reds.sort_unstable_by_key(|(id, _)| **id);
        for (id, a) in reds {
            eprintln!(
                "  red {id}: node={} mode={:?} phase={:?} pending={} active={} retry={:?} flows={} spill_out={} cpu_done={} dead={}",
                a.node, a.mode, a.phase, a.pending.len(), a.active_fetches.len(), a.retry, a.flows.len(), a.spill_outstanding, a.cpu_done, a.dead
            );
        }
        let mut maps: Vec<_> = self.map_atts.iter().collect();
        maps.sort_unstable_by_key(|(id, _)| **id);
        for (id, a) in maps {
            eprintln!("  map {id}: node={} phase={:?} dead={}", a.node, a.phase, a.dead);
        }
        let incomplete_m = self.maps.iter().filter(|m| !m.completed).count();
        let incomplete_r: Vec<usize> =
            self.reduces.iter().enumerate().filter(|(_, r)| !r.completed).map(|(i, _)| i).collect();
        eprintln!("incomplete maps: {incomplete_m}, incomplete reduces: {incomplete_r:?}");
    }

    // ---------------- event dispatch ----------------

    fn flow_done(&mut self, id: FlowId, info: FlowInfo) {
        match info.purpose {
            Purpose::MapRead | Purpose::MapWrite => self.map_flow_done(info.attempt, info.purpose),
            Purpose::FetchRead { map, source } => self.fetch_read_done(info.attempt, id, map, source),
            Purpose::Fetch { map, source } => self.fetch_flow_done(info.attempt, id, map, source),
            Purpose::Spill => self.spill_flow_done(info.attempt),
            Purpose::MergePass => self.merge_pass_done(info.attempt, id),
            Purpose::ReduceRead | Purpose::Output => self.reduce_flow_done(info.attempt, id),
            Purpose::FcmLocal { .. } | Purpose::FcmNet { .. } => self.reduce_flow_done(info.attempt, id),
        }
    }

    /// Mirror the runtime's post-job handling of committed-output rot.
    ///
    /// The event loop breaks the instant the last reduce commits, so a
    /// `DfsBlock` corruption may still be pending — flush those whose
    /// reduce did commit (like the runtime AM's post-loop flush), then
    /// charge what the verified read + repair pipeline does per rotten
    /// replica: one read failover, one block re-replicated (its payload
    /// bytes copied). A single-replica output has nowhere to fail over
    /// to, so its rotten copy stays corrupt and unrepaired. Background
    /// work after job end: `job_secs` is never touched.
    fn settle_dfs_corruption(&mut self) {
        for (_, target, _) in std::mem::take(&mut self.faults_corrupt) {
            if let CorruptTarget::DfsBlock { reduce_index, block } = target {
                if self.reduces.get(reduce_index as usize).is_some_and(|r| r.completed) {
                    self.corrupt_dfs_blocks.insert((reduce_index, block));
                }
            }
        }
        if self.corrupt_dfs_blocks.is_empty() {
            return;
        }
        // Committed output replicates at the same level `output_flows` used.
        let level = if self.env.alm.mode.logs_enabled() {
            self.env.alm.log_replication
        } else {
            alm_types::ReplicationLevel::Cluster
        };
        let replicas = level.replica_count(self.env.yarn.dfs_replication);
        let block_size = self.env.yarn.dfs_block_size.max(1);
        let out_bytes = self.qty.reduce_out_bytes;
        let nblocks = out_bytes.div_ceil(block_size).max(1);
        for (_, block) in std::mem::take(&mut self.corrupt_dfs_blocks) {
            // An out-of-range sampled block clamps to the last, like the
            // runtime's `corrupt_replica`.
            let idx = (block as u64).min(nblocks - 1);
            let bytes = if idx == nblocks - 1 { out_bytes - idx * block_size } else { block_size };
            if replicas >= 2 {
                self.report.dfs_read_failovers += 1;
                self.report.dfs_repair_bytes += bytes;
            } else {
                self.report.dfs_corrupt_replicas += 1;
            }
        }
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> SimReport {
        // Initial dispatch: all maps queued; reduces wait for the first wave.
        for m in 0..self.qty.num_maps {
            self.queued_maps.push_back(TaskId::map(self.job, m));
        }
        self.dispatch();
        self.q.schedule_after(SimDuration::from_nanos(SAMPLE_EVERY_NS), Ev::Sample);

        let debug_stall = std::env::var_os("ALM_SIM_DEBUG").is_some();
        while let Some((_, ev)) = self.q.pop() {
            self.report.events += 1;
            if debug_stall && self.report.events == 2_000_000 {
                self.dump_state("2M events");
            }
            if self.report.events > MAX_EVENTS {
                break;
            }
            if self.report.succeeded || self.failed {
                break;
            }
            match ev {
                Ev::PoolWake(p) => self.pool_wake(p),
                Ev::LaunchDone(a) => {
                    if a.task.is_reduce() {
                        self.red_launch_done(a)
                    } else {
                        self.map_launch_done(a)
                    }
                }
                Ev::FetchRetry { attempt, map } => self.fetch_retry(attempt, map),
                Ev::CpuDone { attempt, gen } => {
                    if attempt.task.is_reduce() {
                        self.red_cpu_done(attempt, gen)
                    } else {
                        self.map_cpu_done(attempt)
                    }
                }
                Ev::FcmWaitTimeout { attempt, gen } => self.fcm_wait_timeout(attempt, gen),
                Ev::DetectNode(n) => self.detect_node(n),
                Ev::FcmStart(a) => self.fcm_start(a),
                Ev::Sample => {
                    self.sample();
                    if !(self.report.succeeded || self.failed) {
                        self.q.schedule_after(SimDuration::from_nanos(SAMPLE_EVERY_NS), Ev::Sample);
                    }
                }
            }
        }
        if !self.report.succeeded {
            self.report.job_secs = self.now_secs();
        }
        self.settle_dfs_corruption();
        // Close out the timelines with the final state.
        let end = self.report.job_secs;
        for r in 0..self.qty.num_reduces {
            let done = self.reduces[r as usize].completed;
            self.report.reduce_progress.entry(r).or_default().push((end, if done { 1.0 } else { 0.0 }));
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::units::GB;
    use alm_types::{LinkDirection, RecoveryMode};
    use alm_workloads::WorkloadKind;

    fn run(
        kind: WorkloadKind,
        gb: u64,
        reduces: u32,
        mode: RecoveryMode,
        faults: Vec<SimFault>,
    ) -> SimReport {
        let spec = SimJobSpec::new(kind, gb * GB, reduces, 7);
        Simulation::new(spec, ExperimentEnv::paper(mode), faults).run()
    }

    #[test]
    fn clean_terasort_completes() {
        let r = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        assert!(r.succeeded, "{r:?}");
        assert!(r.failures.is_empty());
        assert!(r.job_secs > 1.0 && r.job_secs < 10_000.0, "time {}", r.job_secs);
        assert_eq!(r.map_attempts, 80);
        assert_eq!(r.reduce_attempts, 8);
    }

    #[test]
    fn clean_wordcount_single_reducer() {
        let r = run(WorkloadKind::Wordcount, 10, 1, RecoveryMode::Baseline, vec![]);
        assert!(r.succeeded, "{r:?}");
        // Map phase strictly precedes job completion.
        assert!(r.map_phase_secs > 0.0 && r.map_phase_secs < r.job_secs);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(WorkloadKind::Terasort, 5, 4, RecoveryMode::SfmAlg, vec![]);
        let b = run(WorkloadKind::Terasort, 5, 4, RecoveryMode::SfmAlg, vec![]);
        assert_eq!(a, b, "the simulation must be fully deterministic");
    }

    fn run_resident(
        kind: WorkloadKind,
        gb: u64,
        reduces: u32,
        mode: RecoveryMode,
        faults: Vec<SimFault>,
    ) -> SimReport {
        let spec = SimJobSpec::new(kind, gb * GB, reduces, 7);
        Simulation::new(spec, ExperimentEnv::paper(mode), faults).with_resident_mofs().run()
    }

    #[test]
    fn resident_mofs_skip_disk_and_speed_up_shuffle() {
        let disk = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        let resident = run_resident(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        assert!(resident.succeeded, "{resident:?}");
        assert_eq!(disk.resident_fetch_hits, 0, "residency is opt-in");
        assert!(resident.resident_fetch_hits > 0, "clean-run fetches must all hit RAM");
        assert_eq!(resident.resident_invalidations, 0);
        assert!(
            resident.job_secs < disk.job_secs,
            "memory-served shuffle ({:.1}s) must beat disk-served ({:.1}s)",
            resident.job_secs,
            disk.job_secs
        );
    }

    #[test]
    fn node_crash_wipes_resident_copies() {
        let fault = vec![SimFault::CrashNodeAtReduceProgress { node: 1, reduce_index: 0, at_progress: 0.3 }];
        let r = run_resident(WorkloadKind::Terasort, 10, 8, RecoveryMode::SfmAlg, fault);
        assert!(r.succeeded, "{:?}", r.failures);
        assert!(r.resident_invalidations > 0, "the crashed node held resident MOFs");
        assert!(r.resident_fetch_hits > 0, "survivors keep serving from RAM");
    }

    #[test]
    fn resident_mode_is_deterministic_for_iterative_kinds() {
        let fault = vec![SimFault::CrashNodeAtReduceProgress { node: 2, reduce_index: 1, at_progress: 0.5 }];
        let a = run_resident(WorkloadKind::Pagerank, 10, 8, RecoveryMode::SfmAlg, fault.clone());
        let b = run_resident(WorkloadKind::Pagerank, 10, 8, RecoveryMode::SfmAlg, fault);
        assert!(a.succeeded, "{:?}", a.failures);
        assert_eq!(a, b, "resident mode must stay fully deterministic");
    }

    #[test]
    fn reduce_oom_baseline_restarts_and_delays() {
        let clean = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        let faulty = run(
            WorkloadKind::Terasort,
            10,
            8,
            RecoveryMode::Baseline,
            vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.8 }],
        );
        assert!(faulty.succeeded, "{faulty:?}");
        assert_eq!(faulty.failures.len(), 1);
        assert!(faulty.job_secs > clean.job_secs, "a late reduce failure must delay the job");
        assert_eq!(faulty.reduce_attempts, 9);
    }

    #[test]
    fn map_failures_cheap_reduce_failures_expensive_baseline() {
        // Fig. 1's core claim, reproduced in virtual time at paper scale
        // (100 GB Terasort, 20 reducers): a late failure of one ReduceTask
        // costs far more recovery time than a MapTask failure.
        let clean = run(WorkloadKind::Terasort, 100, 20, RecoveryMode::Baseline, vec![]);
        let map_fault = run(
            WorkloadKind::Terasort,
            100,
            20,
            RecoveryMode::Baseline,
            vec![SimFault::KillMapAtProgress { map_index: 0, at_progress: 0.5 }],
        );
        let red_fault = run(
            WorkloadKind::Terasort,
            100,
            20,
            RecoveryMode::Baseline,
            vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 }],
        );
        let map_delay = map_fault.job_secs - clean.job_secs;
        let red_delay = red_fault.job_secs - clean.job_secs;
        assert!(
            red_delay > map_delay.max(1.0) * 3.0,
            "reduce failure ({red_delay:.1}s) must hurt far more than a map failure ({map_delay:.1}s)"
        );
    }

    #[test]
    fn alg_resume_beats_baseline_restart() {
        let kill = vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 }];
        let yarn = run(WorkloadKind::Terasort, 20, 8, RecoveryMode::Baseline, kill.clone());
        let alg = run(WorkloadKind::Terasort, 20, 8, RecoveryMode::Alg, kill);
        assert!(yarn.succeeded && alg.succeeded);
        assert!(
            alg.job_secs < yarn.job_secs,
            "ALG resume ({:.1}s) must beat restart-from-scratch ({:.1}s)",
            alg.job_secs,
            yarn.job_secs
        );
        assert!(alg.alg_snapshots > 0);
    }

    #[test]
    fn node_crash_baseline_amplifies_sfm_does_not() {
        // Paper-scale Terasort (100 GB, 20 reducers): crash a node once
        // reduce 0 reaches 30% overall progress.
        let fault = vec![SimFault::CrashNodeAtReduceProgress { node: 1, reduce_index: 0, at_progress: 0.3 }];
        let yarn = run(WorkloadKind::Terasort, 100, 20, RecoveryMode::Baseline, fault.clone());
        let sfm = run(WorkloadKind::Terasort, 100, 20, RecoveryMode::Sfm, fault);
        assert!(yarn.succeeded, "{:?}", yarn.failures);
        assert!(sfm.succeeded, "{:?}", sfm.failures);
        let yarn_fetch_failures =
            yarn.failures.iter().filter(|f| f.kind == FailureKind::FetchFailureLimit).count();
        let sfm_fetch_failures =
            sfm.failures.iter().filter(|f| f.kind == FailureKind::FetchFailureLimit).count();
        assert!(
            yarn_fetch_failures > 0,
            "baseline: the recovered reducer must be preempted again over lost MOFs (temporal amplification): {:?}",
            yarn.failures
        );
        assert_eq!(sfm_fetch_failures, 0, "SFM: proactive regeneration prevents amplification");
        assert!(
            sfm.job_secs < yarn.job_secs,
            "SFM ({:.1}s) must recover faster than baseline ({:.1}s)",
            sfm.job_secs,
            yarn.job_secs
        );
    }

    #[test]
    fn slow_node_straggles_without_failing() {
        let clean = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        let slowed = run(
            WorkloadKind::Terasort,
            10,
            8,
            RecoveryMode::Baseline,
            vec![SimFault::SlowNodeAtSecs { node: 0, at_secs: 0.0, factor: 40.0 }],
        );
        assert!(slowed.succeeded, "{slowed:?}");
        assert!(slowed.failures.is_empty(), "a slow node degrades, it never fails: {:?}", slowed.failures);
        assert!(
            slowed.job_secs > clean.job_secs * 1.05,
            "stragglers must delay the job: {:.1}s vs clean {:.1}s",
            slowed.job_secs,
            clean.job_secs
        );
    }

    #[test]
    fn node_crash_detection_honours_timeout() {
        // Crash at a fixed time; the first NodeCrash failure is recorded
        // only after the 70 s liveness timeout.
        let fault = vec![SimFault::CrashNodeAtSecs { node: 0, at_secs: 30.0 }];
        let r = run(WorkloadKind::Terasort, 20, 16, RecoveryMode::Sfm, fault);
        assert!(r.succeeded, "{r:?}");
        if let Some(f) = r.failures.iter().find(|f| f.kind == FailureKind::NodeCrash) {
            assert!(
                f.at_secs >= 30.0 + 69.0,
                "detection at {:.1}s must wait for the 70s liveness timeout",
                f.at_secs
            );
        }
    }

    #[test]
    fn fcm_attempts_used_for_migration() {
        let fault = vec![SimFault::CrashNodeAtReduceProgress { node: 0, reduce_index: 0, at_progress: 0.2 }];
        let r = run(WorkloadKind::Terasort, 20, 16, RecoveryMode::Sfm, fault);
        assert!(r.succeeded);
        if r.failures.iter().any(|f| f.task.is_reduce()) {
            assert!(r.fcm_attempts > 0, "reduce migration should use FCM: {r:?}");
        }
    }

    #[test]
    fn healed_partition_causes_no_failures_or_reexecution() {
        // Tentpole invariant, sim side: a partition that heals (while both
        // endpoints keep heartbeating) must park fetches — never burn retry
        // budget, never preempt a reducer, never re-execute a map.
        for mode in [RecoveryMode::Baseline, RecoveryMode::SfmAlg] {
            let clean = run(WorkloadKind::Terasort, 10, 8, mode, vec![]);
            let red_node = clean.reduce_nodes[&0][0];
            let workers = ExperimentEnv::paper(mode).cluster.worker_nodes();
            let other = (red_node + 1) % workers;
            let heal = clean.map_phase_secs + 30.0;
            let faulty = run(
                WorkloadKind::Terasort,
                10,
                8,
                mode,
                vec![SimFault::PartitionLinkAtSecs {
                    a: red_node,
                    b: other,
                    direction: LinkDirection::Both,
                    from_secs: 0.0,
                    heal_secs: heal,
                }],
            );
            assert!(faulty.succeeded, "{mode:?}: {faulty:?}");
            assert!(
                faulty.failures.is_empty(),
                "{mode:?}: a healed partition must not fail anything: {:?}",
                faulty.failures
            );
            assert_eq!(faulty.map_attempts, clean.map_attempts, "{mode:?}: no map re-execution");
            assert_eq!(faulty.reduce_attempts, clean.reduce_attempts, "{mode:?}: no reducer preemption");
            assert!(
                faulty.job_secs > clean.job_secs,
                "{mode:?}: the parked shuffle must delay the job: {:.1}s vs clean {:.1}s",
                faulty.job_secs,
                clean.job_secs
            );
        }
    }

    #[test]
    fn asymmetric_partition_only_parks_the_cut_direction() {
        // Sever only red_node → other. Reducers on `other` still fetch MOFs
        // hosted on red_node, so the slowdown must be strictly smaller than
        // under the symmetric cut — and nothing may fail in either case.
        let mode = RecoveryMode::Baseline;
        let clean = run(WorkloadKind::Terasort, 10, 8, mode, vec![]);
        let red_node = clean.reduce_nodes[&0][0];
        let workers = ExperimentEnv::paper(mode).cluster.worker_nodes();
        let other = (red_node + 1) % workers;
        let heal = clean.map_phase_secs + 30.0;
        let part = |direction| {
            run(
                WorkloadKind::Terasort,
                10,
                8,
                mode,
                vec![SimFault::PartitionLinkAtSecs {
                    a: red_node,
                    b: other,
                    direction,
                    from_secs: 0.0,
                    heal_secs: heal,
                }],
            )
        };
        let asym = part(LinkDirection::AToB);
        let sym = part(LinkDirection::Both);
        assert!(asym.succeeded && sym.succeeded);
        assert!(asym.failures.is_empty(), "asymmetric cut must not fail anything: {:?}", asym.failures);
        assert_eq!(asym.map_attempts, clean.map_attempts, "no map re-execution under a half-open link");
        assert!(
            asym.job_secs <= sym.job_secs,
            "the half-open link must hurt no more than the full cut: {:.1}s vs {:.1}s",
            asym.job_secs,
            sym.job_secs
        );
    }

    #[test]
    fn degraded_link_drops_refetch_without_preemption() {
        // A lossy, slow gray link between a reducer's node and a MOF host:
        // the job completes, drops are observed and transparently
        // re-fetched, and the retry budget is never charged.
        let mode = RecoveryMode::Baseline;
        let clean = run(WorkloadKind::Terasort, 10, 8, mode, vec![]);
        let red_node = clean.reduce_nodes[&0][0];
        let workers = ExperimentEnv::paper(mode).cluster.worker_nodes();
        // Gray NIC on red_node: every fetch it issues is slow and lossy.
        let faults = (0..workers)
            .filter(|n| *n != red_node)
            .map(|other| SimFault::DegradedLinkAtSecs {
                a: red_node,
                b: other,
                direction: LinkDirection::AToB,
                from_secs: 0.0,
                heal_secs: 1.0e9,
                factor: 4.0,
                loss: 0.5,
            })
            .collect();
        let faulty = run(WorkloadKind::Terasort, 10, 8, mode, faults);
        assert!(faulty.succeeded, "{faulty:?}");
        assert!(faulty.degraded_drops >= 1, "gray loss must be observed: {faulty:?}");
        assert!(faulty.failures.is_empty(), "gray drops must never preempt: {:?}", faulty.failures);
        assert_eq!(faulty.reduce_attempts, clean.reduce_attempts, "no reducer preemption");
        assert!(
            faulty.job_secs > clean.job_secs,
            "slow + lossy fetches must delay the job: {:.1}s vs {:.1}s",
            faulty.job_secs,
            clean.job_secs
        );
    }

    #[test]
    fn flapping_partition_is_deterministic_and_harmless() {
        use alm_types::{FaultPlan, FlapSchedule, NodeId};
        let mode = RecoveryMode::SfmAlg;
        let flap = FlapSchedule { seed: 7, cycles: 3, period_ms: 15_000, down_ms: 10_000 };
        let plan = FaultPlan::flapping_link(NodeId(0), NodeId(1), LinkDirection::Both, 5_000, flap);
        let faults = SimFault::lower_plan(&plan);
        assert_eq!(faults.len(), 3, "one window per cycle");
        let a = run(WorkloadKind::Terasort, 5, 4, mode, faults.clone());
        let b = run(WorkloadKind::Terasort, 5, 4, mode, faults);
        assert_eq!(a, b, "flap windows must preserve full determinism");
        assert!(a.succeeded, "{a:?}");
        assert!(
            a.failures.iter().all(|f| f.kind != FailureKind::FetchFailureLimit),
            "flap cycles must never exhaust the retry budget: {:?}",
            a.failures
        );
    }

    #[test]
    fn corrupted_mof_chunk_refetches_without_preemption() {
        let clean = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Baseline, vec![]);
        let faulty = run(
            WorkloadKind::Terasort,
            10,
            8,
            RecoveryMode::Baseline,
            vec![SimFault::CorruptDataAtSecs {
                node: 0,
                target: CorruptTarget::MofPartition { map_index: 1, partition: 2 },
                at_secs: 0.0,
            }],
        );
        assert!(faulty.succeeded, "{faulty:?}");
        assert!(faulty.corruption_refetches >= 1, "the rot must be observed on arrival: {faulty:?}");
        assert_eq!(faulty.map_attempts, clean.map_attempts + 1, "exactly one regeneration: {faulty:?}");
        assert!(faulty.failures.is_empty(), "checksummed re-fetch must never preempt: {:?}", faulty.failures);
    }

    #[test]
    fn corrupted_alg_record_falls_back_one_snapshot() {
        let faults = vec![
            SimFault::CorruptDataAtSecs {
                node: 0,
                target: CorruptTarget::AlgRecord { reduce_index: 0, seq: 0 },
                at_secs: 0.0,
            },
            SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 },
        ];
        let r = run(WorkloadKind::Terasort, 10, 8, RecoveryMode::Alg, faults);
        assert!(r.succeeded, "{r:?}");
        assert_eq!(r.log_truncations, 1, "the rot must cost exactly one snapshot interval: {r:?}");
        assert!(r.alg_snapshots > 0, "logging must continue after the truncation");
    }

    #[test]
    fn deterministic_with_transient_faults() {
        // Partition + corruption + a crash: jitter comes from the engine
        // RNG stream, so two runs must still be bit-identical.
        let faults = vec![
            SimFault::PartitionLinkAtSecs {
                a: 0,
                b: 1,
                direction: LinkDirection::Both,
                from_secs: 10.0,
                heal_secs: 60.0,
            },
            SimFault::CorruptDataAtSecs {
                node: 0,
                target: CorruptTarget::MofPartition { map_index: 3, partition: 1 },
                at_secs: 5.0,
            },
            SimFault::CrashNodeAtReduceProgress { node: 2, reduce_index: 0, at_progress: 0.3 },
        ];
        let a = run(WorkloadKind::Terasort, 5, 4, RecoveryMode::SfmAlg, faults.clone());
        let b = run(WorkloadKind::Terasort, 5, 4, RecoveryMode::SfmAlg, faults);
        assert_eq!(a, b, "transient faults must preserve full determinism");
    }

    #[test]
    fn progress_timelines_are_sampled() {
        let r = run(WorkloadKind::Wordcount, 10, 1, RecoveryMode::Baseline, vec![]);
        let tl = r.reduce_progress.get(&0).expect("reduce 0 sampled");
        assert!(tl.len() > 3);
        assert!(tl.last().unwrap().1 >= 1.0 - 1e-9);
        // Monotone non-decreasing in a failure-free run.
        for w in tl.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }
}
