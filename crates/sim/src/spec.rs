//! Experiment inputs.

use alm_types::{
    AlmConfig, ClusterSpec, CorruptTarget, Fault, FaultPlan, LinkDirection, RecoveryMode, YarnConfig,
};
use alm_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};

/// The job to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJobSpec {
    pub workload: WorkloadKind,
    pub input_bytes: u64,
    pub num_reduces: u32,
    pub seed: u64,
}

impl SimJobSpec {
    pub fn new(workload: WorkloadKind, input_bytes: u64, num_reduces: u32, seed: u64) -> SimJobSpec {
        SimJobSpec { workload, input_bytes, num_reduces, seed }
    }

    /// The paper's §V-B instance of this workload (Terasort 100 GB /
    /// Wordcount 10 GB with 1 reducer / Secondarysort 10 GB); the
    /// iterative kinds model one 10 GB chain step at Terasort-like widths.
    pub fn paper(workload: WorkloadKind, seed: u64) -> SimJobSpec {
        let gb = alm_types::units::GB;
        match workload {
            WorkloadKind::Terasort => SimJobSpec::new(workload, 100 * gb, 20, seed),
            WorkloadKind::Wordcount => SimJobSpec::new(workload, 10 * gb, 1, seed),
            WorkloadKind::SecondarySort => SimJobSpec::new(workload, 10 * gb, 8, seed),
            WorkloadKind::Pagerank => SimJobSpec::new(workload, 10 * gb, 20, seed),
            WorkloadKind::KMeans => SimJobSpec::new(workload, 10 * gb, 8, seed),
        }
    }
}

/// A fault to inject, in virtual time or at a progress trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimFault {
    /// Fail attempt 0 of the given reduce task with an injected OOM once
    /// its overall progress reaches the fraction.
    KillReduceAtProgress { reduce_index: u32, at_progress: f64 },
    /// Fail attempt 0 of the given map task at a fraction of its work.
    KillMapAtProgress { map_index: u32, at_progress: f64 },
    /// Crash a node at an absolute virtual time.
    CrashNodeAtSecs { node: u32, at_secs: f64 },
    /// Crash a node once the given reduce task's reduce-phase progress
    /// reaches the fraction (how §V places node failures).
    CrashNodeAtReduceProgress { node: u32, reduce_index: u32, at_progress: f64 },
    /// Degrade a node's compute speed by `factor` (>= 1) from `at_secs` on;
    /// the node keeps heartbeating (faulty-but-alive slow node, §IV-B).
    /// Applies to CPU phases started after activation.
    SlowNodeAtSecs { node: u32, at_secs: f64, factor: f64 },
    /// Sever the data-plane link between two (alive, heartbeating) nodes
    /// from `from_secs` until `heal_secs`, in the given direction(s). Fetch
    /// admission across a severed direction parks instead of burning retry
    /// budget — the transient-fault half of §II-C's amplification story. An
    /// asymmetric direction leaves the reverse path (and heartbeats) healthy.
    PartitionLinkAtSecs { a: u32, b: u32, direction: LinkDirection, from_secs: f64, heal_secs: f64 },
    /// Gray-degrade the link between two alive nodes from `from_secs` until
    /// `heal_secs`: fetch transfers crossing a degraded direction are
    /// stretched by `factor` and each completion is dropped (and
    /// transparently re-fetched, never charged to the retry budget) with
    /// probability `loss`.
    DegradedLinkAtSecs {
        a: u32,
        b: u32,
        direction: LinkDirection,
        from_secs: f64,
        heal_secs: f64,
        factor: f64,
        loss: f64,
    },
    /// Rot one durable artifact at `at_secs` (checksummed recovery path).
    CorruptDataAtSecs { node: u32, target: CorruptTarget, at_secs: f64 },
}

impl SimFault {
    /// Lower one engine-neutral [`Fault`] onto this engine's trigger
    /// vocabulary. Map/reduce kills split by task kind; absolute
    /// millisecond triggers become virtual seconds. Kills of attempts
    /// other than 0 have no simulator equivalent (the simulator's kill
    /// triggers fire once, on the first attempt) and lower to nothing. A
    /// flapping partition expands into one sever→heal window per cycle via
    /// the *shared* `FaultPlan::partition_windows` expansion, so the two
    /// engines' timelines cannot drift.
    pub fn lower(fault: &Fault) -> Vec<SimFault> {
        match fault {
            Fault::KillTask { task, attempt_number: 0, at_progress } => vec![if task.is_reduce() {
                SimFault::KillReduceAtProgress { reduce_index: task.index, at_progress: *at_progress }
            } else {
                SimFault::KillMapAtProgress { map_index: task.index, at_progress: *at_progress }
            }],
            Fault::KillTask { .. } => vec![],
            Fault::CrashNodeAtMs { node, at_ms } => {
                vec![SimFault::CrashNodeAtSecs { node: node.0, at_secs: *at_ms as f64 / 1000.0 }]
            }
            Fault::CrashNodeAtReduceProgress { node, reduce_index, at_progress } => {
                vec![SimFault::CrashNodeAtReduceProgress {
                    node: node.0,
                    reduce_index: *reduce_index,
                    at_progress: *at_progress,
                }]
            }
            Fault::SlowNode { node, at_ms, factor } => vec![SimFault::SlowNodeAtSecs {
                node: node.0,
                at_secs: *at_ms as f64 / 1000.0,
                factor: *factor,
            }],
            Fault::PartitionLink { .. } => FaultPlan { faults: vec![fault.clone()] }
                .partition_windows()
                .into_iter()
                .map(|w| SimFault::PartitionLinkAtSecs {
                    a: w.a.0,
                    b: w.b.0,
                    direction: w.direction,
                    from_secs: w.from_ms as f64 / 1000.0,
                    heal_secs: w.heal_ms.max(w.from_ms) as f64 / 1000.0,
                })
                .collect(),
            Fault::DegradedLink { a, b, direction, from_ms, heal_ms, factor, loss } => {
                vec![SimFault::DegradedLinkAtSecs {
                    a: a.0,
                    b: b.0,
                    direction: *direction,
                    from_secs: *from_ms as f64 / 1000.0,
                    heal_secs: *heal_ms as f64 / 1000.0,
                    factor: *factor,
                    loss: *loss,
                }]
            }
            Fault::CorruptData { node, target, at_ms } => vec![SimFault::CorruptDataAtSecs {
                node: node.0,
                target: *target,
                at_secs: *at_ms as f64 / 1000.0,
            }],
        }
    }

    /// Lower a whole shared [`FaultPlan`] (dropping faults with no
    /// simulator equivalent and expanding flap schedules — see
    /// [`SimFault::lower`]).
    pub fn lower_plan(plan: &FaultPlan) -> Vec<SimFault> {
        plan.faults.iter().flat_map(SimFault::lower).collect()
    }
}

/// The full environment of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentEnv {
    pub cluster: ClusterSpec,
    pub yarn: YarnConfig,
    pub alm: AlmConfig,
}

impl ExperimentEnv {
    /// Paper testbed + Table I + a recovery mode.
    pub fn paper(mode: RecoveryMode) -> ExperimentEnv {
        ExperimentEnv {
            cluster: ClusterSpec::default(),
            yarn: YarnConfig::default(),
            alm: AlmConfig::with_mode(mode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs() {
        let t = SimJobSpec::paper(WorkloadKind::Terasort, 1);
        assert_eq!(t.num_reduces, 20, "Table II / Fig. 4 use 20 reducers");
        let w = SimJobSpec::paper(WorkloadKind::Wordcount, 1);
        assert_eq!(w.num_reduces, 1, "Figs. 3/10 use a single reducer");
    }

    #[test]
    fn env_modes() {
        let e = ExperimentEnv::paper(RecoveryMode::Baseline);
        assert_eq!(e.cluster.nodes, 21);
        assert!(!e.alm.mode.sfm_enabled());
    }

    #[test]
    fn lowering_the_shared_plan() {
        use alm_types::{JobId, NodeId, TaskId};
        let job = JobId(0);
        let plan = FaultPlan::kill_task(TaskId::reduce(job, 3), 0.8)
            .and(FaultPlan::kill_task(TaskId::map(job, 1), 0.5))
            .and(FaultPlan::crash_node_at_ms(NodeId(2), 30_000))
            .and(FaultPlan::crash_node_at_reduce_progress(NodeId(4), 0, 0.3))
            .and(FaultPlan::slow_node(NodeId(5), 10_000, 2.0))
            .and(FaultPlan::partition_link(NodeId(0), NodeId(6), 5_000, 45_000))
            .and(FaultPlan::degraded_link(NodeId(2), NodeId(3), LinkDirection::AToB, 8_000, 20_000, 3.0, 0.1))
            .and(FaultPlan::corrupt_data(
                NodeId(1),
                CorruptTarget::MofPartition { map_index: 2, partition: 7 },
                12_000,
            ));
        let lowered = SimFault::lower_plan(&plan);
        assert_eq!(
            lowered,
            vec![
                SimFault::KillReduceAtProgress { reduce_index: 3, at_progress: 0.8 },
                SimFault::KillMapAtProgress { map_index: 1, at_progress: 0.5 },
                SimFault::CrashNodeAtSecs { node: 2, at_secs: 30.0 },
                SimFault::CrashNodeAtReduceProgress { node: 4, reduce_index: 0, at_progress: 0.3 },
                SimFault::SlowNodeAtSecs { node: 5, at_secs: 10.0, factor: 2.0 },
                SimFault::PartitionLinkAtSecs {
                    a: 0,
                    b: 6,
                    direction: LinkDirection::Both,
                    from_secs: 5.0,
                    heal_secs: 45.0,
                },
                SimFault::DegradedLinkAtSecs {
                    a: 2,
                    b: 3,
                    direction: LinkDirection::AToB,
                    from_secs: 8.0,
                    heal_secs: 20.0,
                    factor: 3.0,
                    loss: 0.1,
                },
                SimFault::CorruptDataAtSecs {
                    node: 1,
                    target: CorruptTarget::MofPartition { map_index: 2, partition: 7 },
                    at_secs: 12.0,
                },
            ]
        );
    }

    #[test]
    fn later_attempt_kills_have_no_sim_equivalent() {
        use alm_types::{JobId, TaskId};
        let f = Fault::KillTask { task: TaskId::reduce(JobId(0), 0), attempt_number: 1, at_progress: 0.5 };
        assert_eq!(SimFault::lower(&f), vec![]);
    }

    #[test]
    fn flapping_partition_lowers_to_one_window_per_cycle() {
        use alm_types::{FlapSchedule, NodeId};
        let flap = FlapSchedule { seed: 9, cycles: 3, period_ms: 20_000, down_ms: 10_000 };
        let plan = FaultPlan::flapping_link(NodeId(1), NodeId(4), LinkDirection::BToA, 5_000, flap);
        let lowered = SimFault::lower_plan(&plan);
        let windows = plan.partition_windows();
        assert_eq!(lowered.len(), 3, "one sim window per flap cycle");
        for (f, w) in lowered.iter().zip(&windows) {
            match f {
                SimFault::PartitionLinkAtSecs { a, b, direction, from_secs, heal_secs } => {
                    assert_eq!((*a, *b), (1, 4));
                    assert_eq!(*direction, LinkDirection::BToA);
                    assert!((from_secs * 1000.0 - w.from_ms as f64).abs() < 1e-6);
                    assert!((heal_secs * 1000.0 - w.heal_ms as f64).abs() < 1e-6);
                }
                other => panic!("unexpected lowering: {other:?}"),
            }
        }
    }
}
