//! Experiment inputs.

use alm_types::{AlmConfig, ClusterSpec, RecoveryMode, YarnConfig};
use alm_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};

/// The job to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJobSpec {
    pub workload: WorkloadKind,
    pub input_bytes: u64,
    pub num_reduces: u32,
    pub seed: u64,
}

impl SimJobSpec {
    pub fn new(workload: WorkloadKind, input_bytes: u64, num_reduces: u32, seed: u64) -> SimJobSpec {
        SimJobSpec { workload, input_bytes, num_reduces, seed }
    }

    /// The paper's §V-B instance of this workload (Terasort 100 GB /
    /// Wordcount 10 GB with 1 reducer / Secondarysort 10 GB).
    pub fn paper(workload: WorkloadKind, seed: u64) -> SimJobSpec {
        let gb = alm_types::units::GB;
        match workload {
            WorkloadKind::Terasort => SimJobSpec::new(workload, 100 * gb, 20, seed),
            WorkloadKind::Wordcount => SimJobSpec::new(workload, 10 * gb, 1, seed),
            WorkloadKind::SecondarySort => SimJobSpec::new(workload, 10 * gb, 8, seed),
        }
    }
}

/// A fault to inject, in virtual time or at a progress trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimFault {
    /// Fail attempt 0 of the given reduce task with an injected OOM once
    /// its overall progress reaches the fraction.
    KillReduceAtProgress { reduce_index: u32, at_progress: f64 },
    /// Fail attempt 0 of the given map task at a fraction of its work.
    KillMapAtProgress { map_index: u32, at_progress: f64 },
    /// Crash a node at an absolute virtual time.
    CrashNodeAtSecs { node: u32, at_secs: f64 },
    /// Crash a node once the given reduce task's reduce-phase progress
    /// reaches the fraction (how §V places node failures).
    CrashNodeAtReduceProgress { node: u32, reduce_index: u32, at_progress: f64 },
}

/// The full environment of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentEnv {
    pub cluster: ClusterSpec,
    pub yarn: YarnConfig,
    pub alm: AlmConfig,
}

impl ExperimentEnv {
    /// Paper testbed + Table I + a recovery mode.
    pub fn paper(mode: RecoveryMode) -> ExperimentEnv {
        ExperimentEnv {
            cluster: ClusterSpec::default(),
            yarn: YarnConfig::default(),
            alm: AlmConfig::with_mode(mode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs() {
        let t = SimJobSpec::paper(WorkloadKind::Terasort, 1);
        assert_eq!(t.num_reduces, 20, "Table II / Fig. 4 use 20 reducers");
        let w = SimJobSpec::paper(WorkloadKind::Wordcount, 1);
        assert_eq!(w.num_reduces, 1, "Figs. 3/10 use a single reducer");
    }

    #[test]
    fn env_modes() {
        let e = ExperimentEnv::paper(RecoveryMode::Baseline);
        assert_eq!(e.cluster.nodes, 21);
        assert!(!e.alm.mode.sfm_enabled());
    }
}
