//! End-to-end tests of the `alm-lint` binary: the seeded fixture workspace
//! must fail `--check` with every rule firing, and the real workspace must
//! pass it — the self-test that keeps the repo lint-clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_alm-lint"))
        .args(extra)
        .arg("--root")
        .arg(root)
        .output()
        .expect("run alm-lint")
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn seeded_fixture_fails_check_with_every_rule_firing() {
    let out = lint(&fixture_root(), &["--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "seeded violations must fail --check:\n{stdout}");
    for code in ["D1", "D2", "D3", "V1", "C1", "L1", "A0", "P1", "G1", "R1"] {
        assert!(stdout.contains(code), "code {code} missing from report:\n{stdout}");
    }
    // Each seed lands where it was planted.
    for site in [
        "crates/sim/src/engine.rs",
        "crates/des/src/clock.rs",
        "crates/core/src/rng.rs",
        "crates/types/src/failure.rs",
        "crates/types/src/config.rs",
        "crates/runtime/src/am.rs",
        "crates/sim/src/trace.rs",
        "crates/chaos/src/campaign.rs",
        "crates/sched/src/campaign.rs",
    ] {
        assert!(stdout.contains(site), "site {site} missing from report:\n{stdout}");
    }
    // The cross-engine parity seed: a SimReport-only counter nobody reads.
    assert!(stdout.contains("phantom_completions"), "seeded parity gap missing:\n{stdout}");
    // The golden-gate seed fires on the unguarded novel key, not on the
    // baseline keys and not on the guarded one.
    assert!(stdout.contains("stall_ratio"), "seeded emission gap missing:\n{stdout}");
    assert!(!stdout.contains("degraded_drops"), "guarded emission must not fire:\n{stdout}");
    // The RNG seeds: a label-shape collision and a loop-invariant label.
    assert!(stdout.contains("warehouse-jitter"), "seeded stream collision missing:\n{stdout}");
    assert!(stdout.contains("loop variable `t`"), "seeded loop-label gap missing:\n{stdout}");
    // The gray-direction coverage fires precisely on the variant the
    // seeded sampler omits, not on the ones it names.
    assert!(stdout.contains("LinkDirection::BToA"), "seeded direction gap missing:\n{stdout}");
    assert!(!stdout.contains("LinkDirection::AToB"), "named variants must not fire:\n{stdout}");
    // The chain-mode coverage fires on the durable variant the seeded sim
    // chain engine omits — and only there: the fixture runtime engine
    // names both, and the replay variant is named by both groups.
    assert!(stdout.contains("MemMode::AlgFcm"), "seeded chain-mode gap missing:\n{stdout}");
    assert!(stdout.contains("sim chain engine"), "gap must point at the sim group:\n{stdout}");
    assert!(!stdout.contains("MemMode::LineageReplay"), "named variants must not fire:\n{stdout}");
    assert!(!stdout.contains("runtime chain engine"), "covered groups must not fire:\n{stdout}");
    // The MemConfig coverage fires on the field scaled_for_tests() omits.
    assert!(stdout.contains("mem_max_chain_iterations"), "seeded MemConfig gap missing:\n{stdout}");
}

#[test]
fn without_check_the_fixture_still_reports_but_exits_zero() {
    let out = lint(&fixture_root(), &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "report mode never fails the build:\n{stdout}");
    assert!(stdout.contains("diagnostic(s)"), "{stdout}");
}

#[test]
fn rule_filter_restricts_the_report() {
    let out = lint(&fixture_root(), &["--check", "--rule", "D2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(stdout.contains("wall-clock"), "{stdout}");
    assert!(!stdout.contains("unordered-iter"), "only the selected rule runs:\n{stdout}");
}

#[test]
fn real_workspace_passes_check() {
    let out = lint(&workspace_root(), &["--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the workspace must stay lint-clean — fix the finding or annotate with a reason:\n{stdout}"
    );
    assert!(stdout.contains("files clean"), "{stdout}");
}

#[test]
fn list_rules_names_all_nine() {
    let out =
        Command::new(env!("CARGO_BIN_EXE_alm-lint")).arg("--list-rules").output().expect("run alm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    for id in [
        "unordered-iter",
        "wall-clock",
        "rng-stream",
        "fault-vocab",
        "config-coverage",
        "lock-order",
        "counter-parity",
        "golden-emission",
        "rng-collision",
    ] {
        assert!(stdout.contains(id), "rule {id} missing:\n{stdout}");
    }
}

#[test]
fn json_mode_emits_stable_machine_readable_diagnostics() {
    let out = lint(&fixture_root(), &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "json without --check exits zero:\n{stdout}");
    // stdout is pure JSON (the summary moves to stderr so pipes stay clean).
    assert!(stdout.trim_start().starts_with('['), "stdout must be a JSON array:\n{stdout}");
    assert!(stderr.contains("diagnostic(s)"), "summary goes to stderr:\n{stderr}");
    // Fixed key order per object, so diffs of CI artifacts are meaningful.
    let first = stdout.find("{\"file\":").expect("at least one diagnostic object");
    let obj = &stdout[first..];
    let pos = |k: &str| obj.find(k).unwrap_or_else(|| panic!("key {k} missing:\n{obj}"));
    assert!(pos("\"file\":") < pos("\"line\":"));
    assert!(pos("\"line\":") < pos("\"code\":"));
    assert!(pos("\"code\":") < pos("\"rule\":"));
    assert!(pos("\"rule\":") < pos("\"message\":"));
    // --check still gates in json mode.
    let gated = lint(&fixture_root(), &["--check", "--json"]);
    assert!(!gated.status.success(), "seeded fixture must fail --check --json");
}
