//! Fixture: the seeded D2 violation — a wall-clock read inside the DES.

pub fn elapsed_ms() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}
