//! Fixture: config surface. `heartbeat_interval_ms` is validated but never
//! pinned by `scaled_for_tests()` — the seeded C1 violation.

pub struct YarnConfig {
    pub node_heap_bytes: u64,
    pub heartbeat_interval_ms: u64,
}

impl YarnConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.node_heap_bytes == 0 {
            return Err("node_heap_bytes must be nonzero".into());
        }
        if self.heartbeat_interval_ms == 0 {
            return Err("heartbeat_interval_ms must be nonzero".into());
        }
        Ok(())
    }

    pub fn scaled_for_tests() -> YarnConfig {
        YarnConfig { node_heap_bytes: 1024, ..Default::default() }
    }
}

/// Failure semantics of the in-memory chain (V1 coverage target: the
/// fixture sim chain engine never names `AlgFcm`).
pub enum MemMode {
    LineageReplay,
    AlgFcm,
}

/// `mem_max_chain_iterations` is validated but never pinned by
/// `scaled_for_tests()` — the seeded C1 violation for `MemConfig`.
pub struct MemConfig {
    pub mem_mode: MemMode,
    pub mem_resident_capacity_bytes: u64,
    pub mem_max_chain_iterations: u32,
}

impl MemConfig {
    pub fn validate(&self) -> Result<(), String> {
        let _ = &self.mem_mode;
        if self.mem_resident_capacity_bytes == 0 {
            return Err("mem_resident_capacity_bytes must be nonzero".into());
        }
        if self.mem_max_chain_iterations == 0 {
            return Err("mem_max_chain_iterations must be nonzero".into());
        }
        Ok(())
    }

    pub fn scaled_for_tests() -> MemConfig {
        MemConfig {
            mem_mode: MemMode::LineageReplay,
            mem_resident_capacity_bytes: 4096,
            ..Default::default()
        }
    }
}
