//! Fixture: config surface. `heartbeat_interval_ms` is validated but never
//! pinned by `scaled_for_tests()` — the seeded C1 violation.

pub struct YarnConfig {
    pub node_heap_bytes: u64,
    pub heartbeat_interval_ms: u64,
}

impl YarnConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.node_heap_bytes == 0 {
            return Err("node_heap_bytes must be nonzero".into());
        }
        if self.heartbeat_interval_ms == 0 {
            return Err("heartbeat_interval_ms must be nonzero".into());
        }
        Ok(())
    }

    pub fn scaled_for_tests() -> YarnConfig {
        YarnConfig { node_heap_bytes: 1024, ..Default::default() }
    }
}
