//! Fixture: fault vocabulary. `FailureKind::TaskOom` is deliberately never
//! named in the chaos-analyzer group — the seeded V1 violation.

pub enum Fault {
    CrashNode,
}

pub enum FailureKind {
    NodeCrash,
    TaskOom,
}
