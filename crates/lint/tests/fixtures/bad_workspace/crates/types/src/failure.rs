//! Fixture: fault vocabulary. `FailureKind::TaskOom` is deliberately never
//! named in the chaos-analyzer group, and `LinkDirection::BToA` is missing
//! from the fault-space sampling group — the seeded V1 violations.

pub enum Fault {
    CrashNode,
}

pub enum FailureKind {
    NodeCrash,
    TaskOom,
}

pub enum LinkDirection {
    Both,
    AToB,
    BToA,
}

impl LinkDirection {
    // The derivation group names every variant, so only the sampling
    // group's seeded omission fires.
    pub fn flip(self) -> LinkDirection {
        match self {
            LinkDirection::Both => LinkDirection::Both,
            LinkDirection::AToB => LinkDirection::BToA,
            LinkDirection::BToA => LinkDirection::AToB,
        }
    }
}
