//! Fixture: fault-space sampling. Names `Both` and `AToB` but never
//! `LinkDirection::BToA` — the seeded V1 gray-direction violation.

use crate::failure::LinkDirection;

pub fn sample_direction(coin: bool) -> LinkDirection {
    if coin {
        LinkDirection::AToB
    } else {
        LinkDirection::Both
    }
}
