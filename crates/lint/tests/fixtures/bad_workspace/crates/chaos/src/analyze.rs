//! Fixture: chaos analyzer. Classifies `NodeCrash` but never names
//! `FailureKind::TaskOom` — which makes the V1 seed in failure.rs fire.
//! Reads the parity-clean report counters (`map_attempts`, `job_time_ms`)
//! so only the seeded `phantom_completions` gap fires P1.

pub fn node_losses(kinds: &[FailureKind]) -> usize {
    kinds.iter().filter(|k| matches!(k, FailureKind::NodeCrash)).count()
}

pub fn compare(runtime: &JobReport, sim: &SimReport) -> bool {
    runtime.map_attempts == sim.map_attempts && runtime.job_time_ms > 0
}
