//! Fixture: chaos analyzer. Classifies `NodeCrash` but never names
//! `FailureKind::TaskOom` — which makes the V1 seed in failure.rs fire.

pub fn node_losses(kinds: &[FailureKind]) -> usize {
    kinds.iter().filter(|k| matches!(k, FailureKind::NodeCrash)).count()
}
