//! Fixture: chaos campaign serializer. `stall_ratio` is the seeded G1
//! violation — emitted unconditionally but absent from the committed
//! golden baseline, so a real campaign gate would stop matching byte-for-
//! byte. `degraded_drops` shows the sanctioned idiom: novel but guarded.

pub struct CampaignReport {
    pub scenario: String,
    pub succeeded: bool,
    pub map_attempts: u32,
    pub stall_ratio: u32,
    pub degraded_drops: u32,
}

impl CampaignReport {
    pub fn canonical_json(&self) -> String {
        use serde_json::Value;
        let mut fields = vec![
            ("scenario", Value::Str(self.scenario.clone())),
            ("succeeded", Value::Bool(self.succeeded)),
            ("map_attempts", Value::U64(self.map_attempts as u64)),
            ("stall_ratio", Value::U64(self.stall_ratio as u64)),
        ];
        if self.degraded_drops > 0 {
            fields.push(("degraded_drops", Value::U64(self.degraded_drops as u64)));
        }
        serde_json::to_string(&Value::Object(fields.into_iter().collect())).unwrap()
    }
}
