//! Fixture: chaos scenario vocabulary, fully lowered in-file (V1-clean).

pub enum ChaosFault {
    KillNode,
}

pub fn lower(f: &ChaosFault) -> u32 {
    match f {
        ChaosFault::KillNode => 0,
    }
}
