//! Fixture: sim chain engine that only handles lineage replay — the
//! seeded V1 violation for `MemMode` (never names `MemMode::AlgFcm`).

use crate::config::MemMode;

pub fn save_durable(mode: MemMode) {
    // Only the replay arm exists; the durable-checkpoint arm is missing.
    if matches!(mode, MemMode::LineageReplay) {
        replay_prefix();
    }
}

fn replay_prefix() {}
