//! Fixture: runtime chain engine that names every `MemMode` variant —
//! proves V1 fires only on the group (sim) that omits one.

use crate::config::MemMode;

pub fn save_durable(mode: MemMode) {
    match mode {
        MemMode::LineageReplay => {}
        MemMode::AlgFcm => write_checkpoint(),
    }
}

fn write_checkpoint() {}
