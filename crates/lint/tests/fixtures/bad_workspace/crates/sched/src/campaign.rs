//! Fixture: warehouse campaign RNG derivations. Two seeded R1 violations:
//! `arrival_jitter` and `retry_jitter` derive streams whose labels differ
//! only by dead text (the format argument name), so the (seed, label)
//! shapes collide; and `shuffle_arrivals` draws inside a `for` loop with a
//! label that omits the loop variable, deriving one stream for every
//! tenant.

pub fn arrival_jitter(seed: u64, i: u64) -> u64 {
    let mut r = alm_des::rng::stream(seed, &format!("warehouse-jitter/{}", i));
    r.next_u64()
}

pub fn retry_jitter(seed: u64, j: u64) -> u64 {
    let mut r = alm_des::rng::stream(seed, &format!("warehouse-jitter/{}", j));
    r.next_u64()
}

pub fn shuffle_arrivals(seed: u64, tenants: &[u64]) -> u64 {
    let mut acc = 0;
    for t in tenants {
        let mut r = alm_des::rng::stream(seed, "warehouse-arrivals");
        acc += r.next_u64() ^ t;
    }
    acc
}
