//! Fixture: the seeded D3 violation (ambient entropy) plus a rotted
//! annotation (unknown rule id) for A0.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

// alm-lint: allow(no-such-rule) — typo'd rule id, must be reported
pub fn seeded() -> u64 {
    42
}
