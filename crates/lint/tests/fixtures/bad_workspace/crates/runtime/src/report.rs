//! Fixture: runtime job report. Parity-clean on its own — `map_attempts`
//! mirrors the sim report and `job_time_ms` rides the registered
//! `job_secs` alias; the seeded P1 gap lives on the sim side
//! (`phantom_completions` in trace.rs).

pub struct JobReport {
    pub succeeded: bool,
    pub job_time_ms: u64,
    pub map_attempts: u32,
}
