//! Fixture: runtime engine. `requeue()` and `drain()` take the two locks in
//! opposite orders — the seeded L1 cycle. Also names the runtime-side fault
//! vocabulary for V1.

use parking_lot::Mutex;

pub struct Am {
    state: Mutex<u64>,
    queue: Mutex<Vec<u64>>,
}

impl Am {
    pub fn requeue(&self) {
        let st = self.state.lock();
        let mut q = self.queue.lock();
        q.push(*st);
    }

    pub fn drain(&self) -> u64 {
        let q = self.queue.lock();
        let st = self.state.lock();
        *st + q.len() as u64
    }
}

pub fn inject(f: Fault) {
    match f {
        Fault::CrashNode => {}
    }
}

pub fn record(k: FailureKind) -> bool {
    matches!(k, FailureKind::NodeCrash | FailureKind::TaskOom)
}
