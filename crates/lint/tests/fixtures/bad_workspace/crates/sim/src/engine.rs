//! Fixture: sim engine. The `tick()` body carries the seeded D1 violation —
//! hash-order iteration escaping into a returned Vec, unsorted.

use std::collections::HashMap;

pub struct Engine {
    pub atts: HashMap<u64, u64>,
}

impl Engine {
    pub fn tick(&self) -> Vec<u64> {
        self.atts.keys().copied().collect()
    }
}

pub fn classify(kind: FailureKind) -> u32 {
    match kind {
        FailureKind::NodeCrash => 0,
        FailureKind::TaskOom => 1,
    }
}

pub fn lowered() -> SimFault {
    SimFault::Crash
}
