//! Fixture: sim report. `phantom_completions` is the seeded P1 violation:
//! a SimReport-only counter with no `JobReport` counterpart and no read in
//! the validator — observability the runtime engine silently lacks.

pub struct SimReport {
    pub succeeded: bool,
    pub job_secs: f64,
    pub map_attempts: u32,
    pub phantom_completions: u32,
}
