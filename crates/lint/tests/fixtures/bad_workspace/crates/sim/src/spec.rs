//! Fixture: sim-side fault lowering (names `Fault::CrashNode` for V1).

pub enum SimFault {
    Crash,
}

pub fn lower(f: Fault) -> SimFault {
    match f {
        Fault::CrashNode => SimFault::Crash,
    }
}
