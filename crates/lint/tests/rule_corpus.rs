//! Per-rule corpus tests: for each rule, a minimal violating source, the
//! clean counterparts, and the annotation escape hatch — all run through the
//! library API on in-memory workspaces so the behavior is pinned at the
//! precision of a single line.

use alm_lint::rules::{
    ConfigCoverage, EnumCoverage, FaultVocab, LockOrder, Randomness, Rule, UnorderedIter, WallClock,
};
use alm_lint::{Linter, Workspace};

fn run(rule: Box<dyn Rule>, sources: &[(&str, &str)]) -> Vec<alm_lint::Diagnostic> {
    Linter::with_rules(vec![rule]).run(&Workspace::from_sources(sources))
}

// ---------------- D1 unordered-iter ----------------

const D1_STRUCT: &str = "use std::collections::HashMap;\n\
                         pub struct S {\n    pub m: HashMap<u32, u32>,\n}\n";

#[test]
fn d1_flags_hash_order_escaping() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "D1");
    assert!(diags[0].message.contains('m'));
}

#[test]
fn d1_ignores_out_of_scope_crates() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    // crates/metrics is not a deterministic crate.
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/metrics/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_sorted_collect_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn sorted(&self) -> Vec<u32> {{\n        \
         let mut ks: Vec<u32> = self.m.keys().copied().collect();\n        \
         ks.sort_unstable();\n        ks\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/des/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_order_insensitive_tail_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn total(&self) -> usize {{\n        \
         self.m.keys().count()\n    }}\n    pub fn peak(&self) -> Option<u32> {{\n        \
         self.m.values().copied().max()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/core/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_btree_collect_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn stable(&self) -> std::collections::BTreeSet<u32> {{\n        \
         self.m.keys().copied().collect::<BTreeSet<u32>>()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/chaos/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_for_loop_over_hash_collection_is_flagged() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn visit(&self) {{\n        \
         for k in &self.m {{\n            observe(k);\n        }}\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/types/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn d1_allow_with_reason_suppresses_without_reason_does_not() {
    let with_reason = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         // alm-lint: allow(unordered-iter) — order folded into a set downstream\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &with_reason)]);
    assert!(diags.is_empty(), "{diags:?}");

    let without = with_reason.replace(" — order folded into a set downstream", "");
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &without)]);
    // A reasonless allow suppresses nothing AND is itself a hygiene finding.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.code == "A0"));
    assert!(diags.iter().any(|d| d.code == "D1"));
}

#[test]
fn d1_skips_test_code() {
    let src = format!(
        "{D1_STRUCT}#[cfg(test)]\nmod tests {{\n    fn order(s: &super::S) -> Vec<u32> {{\n        \
         s.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- D2 wall-clock ----------------

const D2_SRC: &str = "pub fn elapsed() -> u64 {\n    let t = std::time::Instant::now();\n    \
                      t.elapsed().as_millis() as u64\n}\n";

#[test]
fn d2_flags_wall_clock_outside_runtime() {
    let diags = run(Box::new(WallClock::default()), &[("crates/des/src/a.rs", D2_SRC)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "D2");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn d2_runtime_engine_is_exempt() {
    let diags = run(Box::new(WallClock::default()), &[("crates/runtime/src/a.rs", D2_SRC)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d2_test_code_may_time_itself() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{D2_SRC}}}\n");
    let diags = run(Box::new(WallClock::default()), &[("crates/des/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- D3 rng-stream ----------------

#[test]
fn d3_flags_ambient_entropy_even_in_tests() {
    let src = "fn jitter() -> f64 {\n    rand::thread_rng().gen()\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/sim/tests/a.rs", src)]);
    assert_eq!(diags.len(), 1, "unreplayable tests are still a finding: {diags:?}");
    assert_eq!(diags[0].code, "D3");
}

#[test]
fn d3_allow_with_reason_suppresses() {
    let src = "fn port() -> u16 {\n    \
               OsRng.next_u32() as u16 // alm-lint: allow(rng-stream) — ephemeral port pick, not replayed\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/runtime/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d3_string_and_comment_mentions_are_not_findings() {
    let src = "// thread_rng is banned here\nfn f() -> &'static str {\n    \"use thread_rng\"\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/core/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- V1 fault-vocab ----------------

fn v1_rule() -> Box<FaultVocab> {
    Box::new(FaultVocab {
        enums: vec![EnumCoverage {
            enum_name: "Fault",
            decl_file: "crates/types/src/failure.rs",
            groups: vec![("engine", vec!["crates/sim/src/engine.rs"])],
        }],
    })
}

const V1_DECL: &str = "pub enum Fault {\n    Alpha,\n    Beta,\n}\n";

#[test]
fn v1_flags_variant_missing_from_group() {
    let engine =
        "fn lower(f: Fault) {\n    match f {\n        Fault::Alpha => {}\n        _ => {}\n    }\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "V1");
    assert!(diags[0].message.contains("Fault::Beta"));
    assert_eq!(diags[0].line, 3, "reported at the variant declaration");
}

#[test]
fn v1_prefix_of_longer_variant_does_not_count() {
    // `Fault::AlphaExtra` must not satisfy `Fault::Alpha`.
    let engine = "fn f() {\n    let _ = Fault::AlphaExtra;\n    let _ = Fault::Beta;\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("Fault::Alpha"));
}

#[test]
fn v1_test_only_mentions_do_not_count() {
    let engine = "fn f() {\n    let _ = Fault::Alpha;\n}\n\
                  #[cfg(test)]\nmod tests {\n    fn g() {\n        let _ = Fault::Beta;\n    }\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "a variant only tests touch is still unhandled: {diags:?}");
}

#[test]
fn v1_allow_at_variant_declaration_exempts() {
    let decl = "pub enum Fault {\n    Alpha,\n    \
                Beta, // alm-lint: allow(fault-vocab) — sim cannot express this\n}\n";
    let engine = "fn f() {\n    let _ = Fault::Alpha;\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", decl), ("crates/sim/src/engine.rs", engine)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn v1_missing_anchor_file_is_itself_a_finding() {
    // A rename must not silently disable the rule.
    let diags = run(v1_rule(), &[("crates/sim/src/engine.rs", "fn f() {}\n")]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("not found"));
}

// ---------------- C1 config-coverage ----------------

fn c1_rule() -> Box<ConfigCoverage> {
    Box::new(ConfigCoverage {
        decl_file: "crates/types/src/config.rs".to_string(),
        struct_name: "Cfg".to_string(),
        fns: vec!["validate".to_string(), "scaled_for_tests".to_string()],
    })
}

#[test]
fn c1_flags_field_unnamed_in_one_fn() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    pub delay_ms: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        \
               assert!(self.heap > 0);\n        assert!(self.delay_ms > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        \
               Cfg { heap: 1, ..Default::default() }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "C1");
    assert!(diags[0].message.contains("delay_ms"));
    assert!(diags[0].message.contains("scaled_for_tests"));
}

#[test]
fn c1_full_coverage_is_clean() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    pub delay_ms: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        \
               assert!(self.heap > 0);\n        assert!(self.delay_ms > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        \
               Cfg { heap: 1, delay_ms: 5 }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn c1_allow_at_field_declaration_exempts() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    \
               pub label: String, // alm-lint: allow(config-coverage) — cosmetic, no behavior\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        assert!(self.heap > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        Cfg { heap: 1, ..Default::default() }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn c1_missing_fn_is_itself_a_finding() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        assert!(self.heap > 0);\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("scaled_for_tests"));
}

// ---------------- L1 lock-order ----------------

fn l1_rule() -> Box<LockOrder> {
    Box::new(LockOrder { scopes: vec!["crates/runtime/src/".to_string()] })
}

const L1_STRUCT: &str = "use parking_lot::Mutex;\n\
                         pub struct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n";

#[test]
fn l1_flags_opposite_order_acquisition() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        let gb = self.b.lock();\n        \
         let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 2, "both sides of the inversion are sites: {diags:?}");
    assert!(diags.iter().all(|d| d.code == "L1"));
    assert!(diags[0].message.contains("->"), "{}", diags[0].message);
}

#[test]
fn l1_consistent_order_is_clean() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l1_drop_releases_the_guard() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         drop(ga);\n        let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        \
         let gb = self.b.lock();\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l1_self_relock_is_a_cycle() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock();\n        \
         let g2 = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("non-reentrant"));
}

#[test]
fn l1_follows_calls_one_level_deep() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        \
         self.inner();\n    }}\n    fn inner(&self) {{\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "holding `a` while calling a fn that locks `a`: {diags:?}");
}

#[test]
fn l1_out_of_scope_crates_are_ignored() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock();\n        \
         let g2 = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/metrics/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}
