//! Per-rule corpus tests: for each rule, a minimal violating source, the
//! clean counterparts, and the annotation escape hatch — all run through the
//! library API on in-memory workspaces so the behavior is pinned at the
//! precision of a single line.

use alm_lint::rules::{
    ConfigCoverage, CounterParity, EnumCoverage, FaultVocab, GoldenEmission, LockOrder, Randomness,
    RngCollision, Rule, UnorderedIter, WallClock,
};
use alm_lint::{Linter, Workspace};

fn run(rule: Box<dyn Rule>, sources: &[(&str, &str)]) -> Vec<alm_lint::Diagnostic> {
    Linter::with_rules(vec![rule]).run(&Workspace::from_sources(sources))
}

fn run_aux(rule: Box<dyn Rule>, sources: &[(&str, &str)], aux: &[(&str, &str)]) -> Vec<alm_lint::Diagnostic> {
    Linter::with_rules(vec![rule]).run(&Workspace::from_sources_with_aux(sources, aux))
}

// ---------------- D1 unordered-iter ----------------

const D1_STRUCT: &str = "use std::collections::HashMap;\n\
                         pub struct S {\n    pub m: HashMap<u32, u32>,\n}\n";

#[test]
fn d1_flags_hash_order_escaping() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "D1");
    assert!(diags[0].message.contains('m'));
}

#[test]
fn d1_ignores_out_of_scope_crates() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    // crates/metrics is not a deterministic crate.
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/metrics/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_sorted_collect_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn sorted(&self) -> Vec<u32> {{\n        \
         let mut ks: Vec<u32> = self.m.keys().copied().collect();\n        \
         ks.sort_unstable();\n        ks\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/des/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_order_insensitive_tail_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn total(&self) -> usize {{\n        \
         self.m.keys().count()\n    }}\n    pub fn peak(&self) -> Option<u32> {{\n        \
         self.m.values().copied().max()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/core/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_btree_collect_is_clean() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn stable(&self) -> std::collections::BTreeSet<u32> {{\n        \
         self.m.keys().copied().collect::<BTreeSet<u32>>()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/chaos/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_for_loop_over_hash_collection_is_flagged() {
    let src = format!(
        "{D1_STRUCT}impl S {{\n    pub fn visit(&self) {{\n        \
         for k in &self.m {{\n            observe(k);\n        }}\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/types/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn d1_allow_with_reason_suppresses_without_reason_does_not() {
    let with_reason = format!(
        "{D1_STRUCT}impl S {{\n    pub fn order(&self) -> Vec<u32> {{\n        \
         // alm-lint: allow(unordered-iter) — order folded into a set downstream\n        \
         self.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &with_reason)]);
    assert!(diags.is_empty(), "{diags:?}");

    let without = with_reason.replace(" — order folded into a set downstream", "");
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &without)]);
    // A reasonless allow suppresses nothing AND is itself a hygiene finding.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.code == "A0"));
    assert!(diags.iter().any(|d| d.code == "D1"));
}

#[test]
fn d1_skips_test_code() {
    let src = format!(
        "{D1_STRUCT}#[cfg(test)]\nmod tests {{\n    fn order(s: &super::S) -> Vec<u32> {{\n        \
         s.m.keys().copied().collect()\n    }}\n}}\n"
    );
    let diags = run(Box::new(UnorderedIter::default()), &[("crates/sim/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- D2 wall-clock ----------------

const D2_SRC: &str = "pub fn elapsed() -> u64 {\n    let t = std::time::Instant::now();\n    \
                      t.elapsed().as_millis() as u64\n}\n";

#[test]
fn d2_flags_wall_clock_outside_runtime() {
    let diags = run(Box::new(WallClock::default()), &[("crates/des/src/a.rs", D2_SRC)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "D2");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn d2_runtime_engine_is_exempt() {
    let diags = run(Box::new(WallClock::default()), &[("crates/runtime/src/a.rs", D2_SRC)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d2_test_code_may_time_itself() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{D2_SRC}}}\n");
    let diags = run(Box::new(WallClock::default()), &[("crates/des/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- D3 rng-stream ----------------

#[test]
fn d3_flags_ambient_entropy_even_in_tests() {
    let src = "fn jitter() -> f64 {\n    rand::thread_rng().gen()\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/sim/tests/a.rs", src)]);
    assert_eq!(diags.len(), 1, "unreplayable tests are still a finding: {diags:?}");
    assert_eq!(diags[0].code, "D3");
}

#[test]
fn d3_allow_with_reason_suppresses() {
    let src = "fn port() -> u16 {\n    \
               OsRng.next_u32() as u16 // alm-lint: allow(rng-stream) — ephemeral port pick, not replayed\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/runtime/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d3_string_and_comment_mentions_are_not_findings() {
    let src = "// thread_rng is banned here\nfn f() -> &'static str {\n    \"use thread_rng\"\n}\n";
    let diags = run(Box::new(Randomness), &[("crates/core/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- V1 fault-vocab ----------------

fn v1_rule() -> Box<FaultVocab> {
    Box::new(FaultVocab {
        enums: vec![EnumCoverage {
            enum_name: "Fault",
            decl_file: "crates/types/src/failure.rs",
            groups: vec![("engine", vec!["crates/sim/src/engine.rs"])],
        }],
    })
}

const V1_DECL: &str = "pub enum Fault {\n    Alpha,\n    Beta,\n}\n";

#[test]
fn v1_flags_variant_missing_from_group() {
    let engine =
        "fn lower(f: Fault) {\n    match f {\n        Fault::Alpha => {}\n        _ => {}\n    }\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "V1");
    assert!(diags[0].message.contains("Fault::Beta"));
    assert_eq!(diags[0].line, 3, "reported at the variant declaration");
}

#[test]
fn v1_prefix_of_longer_variant_does_not_count() {
    // `Fault::AlphaExtra` must not satisfy `Fault::Alpha`.
    let engine = "fn f() {\n    let _ = Fault::AlphaExtra;\n    let _ = Fault::Beta;\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("Fault::Alpha"));
}

#[test]
fn v1_test_only_mentions_do_not_count() {
    let engine = "fn f() {\n    let _ = Fault::Alpha;\n}\n\
                  #[cfg(test)]\nmod tests {\n    fn g() {\n        let _ = Fault::Beta;\n    }\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", V1_DECL), ("crates/sim/src/engine.rs", engine)]);
    assert_eq!(diags.len(), 1, "a variant only tests touch is still unhandled: {diags:?}");
}

#[test]
fn v1_allow_at_variant_declaration_exempts() {
    let decl = "pub enum Fault {\n    Alpha,\n    \
                Beta, // alm-lint: allow(fault-vocab) — sim cannot express this\n}\n";
    let engine = "fn f() {\n    let _ = Fault::Alpha;\n}\n";
    let diags =
        run(v1_rule(), &[("crates/types/src/failure.rs", decl), ("crates/sim/src/engine.rs", engine)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn v1_missing_anchor_file_is_itself_a_finding() {
    // A rename must not silently disable the rule.
    let diags = run(v1_rule(), &[("crates/sim/src/engine.rs", "fn f() {}\n")]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("not found"));
}

// ---------------- C1 config-coverage ----------------

fn c1_rule() -> Box<ConfigCoverage> {
    Box::new(ConfigCoverage {
        decl_file: "crates/types/src/config.rs".to_string(),
        struct_name: "Cfg".to_string(),
        fns: vec!["validate".to_string(), "scaled_for_tests".to_string()],
    })
}

#[test]
fn c1_flags_field_unnamed_in_one_fn() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    pub delay_ms: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        \
               assert!(self.heap > 0);\n        assert!(self.delay_ms > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        \
               Cfg { heap: 1, ..Default::default() }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "C1");
    assert!(diags[0].message.contains("delay_ms"));
    assert!(diags[0].message.contains("scaled_for_tests"));
}

#[test]
fn c1_full_coverage_is_clean() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    pub delay_ms: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        \
               assert!(self.heap > 0);\n        assert!(self.delay_ms > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        \
               Cfg { heap: 1, delay_ms: 5 }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn c1_allow_at_field_declaration_exempts() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n    \
               pub label: String, // alm-lint: allow(config-coverage) — cosmetic, no behavior\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        assert!(self.heap > 0);\n    }\n    \
               pub fn scaled_for_tests() -> Cfg {\n        Cfg { heap: 1, ..Default::default() }\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn c1_missing_fn_is_itself_a_finding() {
    let src = "pub struct Cfg {\n    pub heap: u64,\n}\n\
               impl Cfg {\n    pub fn validate(&self) {\n        assert!(self.heap > 0);\n    }\n}\n";
    let diags = run(c1_rule(), &[("crates/types/src/config.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("scaled_for_tests"));
}

// ---------------- L1 lock-order ----------------

fn l1_rule() -> Box<LockOrder> {
    Box::new(LockOrder { scopes: vec!["crates/runtime/src/".to_string()] })
}

const L1_STRUCT: &str = "use parking_lot::Mutex;\n\
                         pub struct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n";

#[test]
fn l1_flags_opposite_order_acquisition() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        let gb = self.b.lock();\n        \
         let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 2, "both sides of the inversion are sites: {diags:?}");
    assert!(diags.iter().all(|d| d.code == "L1"));
    assert!(diags[0].message.contains("->"), "{}", diags[0].message);
}

#[test]
fn l1_consistent_order_is_clean() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l1_drop_releases_the_guard() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         drop(ga);\n        let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        \
         let gb = self.b.lock();\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l1_self_relock_is_a_cycle() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock();\n        \
         let g2 = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("non-reentrant"));
}

#[test]
fn l1_follows_calls_one_level_deep() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        \
         self.inner();\n    }}\n    fn inner(&self) {{\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "holding `a` while calling a fn that locks `a`: {diags:?}");
}

#[test]
fn l1_out_of_scope_crates_are_ignored() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock();\n        \
         let g2 = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/metrics/src/a.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l1_follows_calls_transitively() {
    // outer holds `a` and calls mid -> leaf, where only leaf locks `a`:
    // invisible to one-level call edges, caught by the transitive closure.
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        \
         self.mid();\n    }}\n    fn mid(&self) {{\n        self.leaf();\n    }}\n    \
         fn leaf(&self) {{\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "two-hop self-relock must be found: {diags:?}");
    assert!(diags[0].message.contains("mid -> leaf"), "report names the call chain: {}", diags[0].message);
}

#[test]
fn l1_transitive_closure_is_cycle_safe() {
    // mutually recursive helpers must not hang the closure, and the lock
    // at the bottom is still found through the recursion.
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        \
         self.ping();\n    }}\n    fn ping(&self) {{\n        self.pong();\n    }}\n    \
         fn pong(&self) {{\n        self.ping();\n        self.leaf();\n    }}\n    \
         fn leaf(&self) {{\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn l1_call_chains_beyond_depth_bound_are_not_followed() {
    // A 9-hop chain to the lock exceeds MAX_CALL_DEPTH (8): conservative
    // silence rather than unbounded closure.
    let mut src = format!(
        "{L1_STRUCT}impl S {{\n    fn outer(&self) {{\n        let ga = self.a.lock();\n        \
         self.h1();\n    }}\n"
    );
    for i in 1..=9 {
        src.push_str(&format!("    fn h{i}(&self) {{\n        self.h{}();\n    }}\n", i + 1));
    }
    src.push_str("    fn h10(&self) {\n        let ga = self.a.lock();\n    }\n}\n");
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(diags.is_empty(), "depth-bounded: {diags:?}");
}

#[test]
fn l1_drop_releases_only_the_named_guard() {
    // drop(ga) must not release gb: the b -> a edge from f() still pairs
    // with g()'s a -> b edge into a cycle.
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n        drop(ga);\n        let ga2 = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    // a -> b (line 9, a still held) and b -> a (line 11, b survived the drop)
    // close the cycle; crucially there is no a-while-holding-a self-relock,
    // which proves drop(ga) released exactly ga.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("`a` while holding `b`")), "{diags:?}");
    assert!(diags.iter().all(|d| !d.message.contains("`a` while holding `a`")), "{diags:?}");
}

#[test]
fn l1_identifiers_ending_in_drop_do_not_release() {
    // The old scan matched `drop(` anywhere in the line, so `undrop(ga)`
    // released the guard — this case locks in the fixed false negative.
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         undrop(ga);\n        let gb = self.b.lock();\n    }}\n    fn g(&self) {{\n        \
         let gb = self.b.lock();\n        let ga = self.a.lock();\n    }}\n}}\n"
    );
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert_eq!(diags.len(), 2, "undrop() must not count as drop(): {diags:?}");
}

#[test]
fn l1_multiple_drops_on_one_line_all_release() {
    let src = format!(
        "{L1_STRUCT}impl S {{\n    fn f(&self) {{\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n        drop(gb); drop(ga);\n        \
         let gb2 = self.b.lock();\n        let ga2 = self.a.lock();\n    }}\n    \
         fn g(&self) {{\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n    }}\n}}\n"
    );
    // After both drops, f() re-acquires in b -> a order while g() uses
    // a -> b: exactly that inversion is reported, not a self-relock.
    let diags = run(l1_rule(), &[("crates/runtime/src/a.rs", &src)]);
    assert!(!diags.is_empty(), "{diags:?}");
    assert!(diags.iter().all(|d| !d.message.contains("a -> a") && !d.message.contains("b -> b")));
}

// ---------------- P1 counter-parity ----------------

fn p1_rule() -> Box<CounterParity> {
    Box::new(CounterParity::default())
}

const P1_LEFT: &str = "pub struct JobReport {\n    pub succeeded: bool,\n    pub job_time_ms: u64,\n    pub map_attempts: u32,\n}\n";
const P1_RIGHT: &str = "pub struct SimReport {\n    pub succeeded: bool,\n    pub job_secs: f64,\n    pub map_attempts: u32,\n}\n";
const P1_CONSUMER: &str =
    "pub fn compare(r: &JobReport, s: &SimReport) -> bool {\n    r.map_attempts == s.map_attempts && r.job_time_ms > 0\n}\n";

fn p1_ws(left: &str, right: &str, consumer: &str) -> Vec<alm_lint::Diagnostic> {
    run(
        p1_rule(),
        &[
            ("crates/runtime/src/report.rs", left),
            ("crates/sim/src/trace.rs", right),
            ("crates/chaos/src/analyze.rs", consumer),
        ],
    )
}

#[test]
fn p1_mirrored_consumed_and_aliased_counters_are_clean() {
    let diags = p1_ws(P1_LEFT, P1_RIGHT, P1_CONSUMER);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn p1_flags_one_sided_counter() {
    let right = P1_RIGHT.replace("}\n", "    pub phantom_completions: u32,\n}\n");
    let diags = p1_ws(P1_LEFT, &right, P1_CONSUMER);
    assert_eq!(diags.len(), 2, "no counterpart AND no validator read: {diags:?}");
    assert!(diags.iter().all(|d| d.code == "P1"));
    assert!(diags.iter().any(|d| d.message.contains("no counterpart")));
    assert!(diags.iter().any(|d| d.message.contains("never read")));
    assert!(diags.iter().all(|d| d.message.contains("phantom_completions")));
}

#[test]
fn p1_flags_unconsumed_counter_present_on_both_sides() {
    let left = P1_LEFT.replace("}\n", "    pub stalls: u32,\n}\n");
    let right = P1_RIGHT.replace("}\n", "    pub stalls: u32,\n}\n");
    let diags = p1_ws(&left, &right, P1_CONSUMER);
    // Mirrored but never read: both declarations are flagged.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.message.contains("never read")));
}

#[test]
fn p1_consumer_reads_in_test_code_do_not_count() {
    let right = P1_RIGHT.replace("}\n", "    pub stalls: u32,\n}\n");
    let left = P1_LEFT.replace("}\n", "    pub stalls: u32,\n}\n");
    let consumer = format!(
        "{P1_CONSUMER}#[cfg(test)]\nmod tests {{\n    fn t(s: &SimReport) {{\n        let _ = s.stalls;\n    }}\n}}\n"
    );
    let diags = p1_ws(&left, &right, &consumer);
    assert_eq!(diags.len(), 2, "a test-only read is not validation: {diags:?}");
}

#[test]
fn p1_allow_at_declaration_exempts_both_checks() {
    let right = P1_RIGHT.replace(
        "}\n",
        "    // alm-lint: allow(counter-parity) — DES-only diagnostic, nothing to mirror\n    pub phantom_completions: u32,\n}\n",
    );
    let diags = p1_ws(P1_LEFT, &right, P1_CONSUMER);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn p1_missing_anchor_files_are_findings() {
    let diags = run(p1_rule(), &[("crates/chaos/src/analyze.rs", P1_CONSUMER)]);
    assert_eq!(diags.len(), 2, "both report files missing: {diags:?}");
    assert!(diags.iter().all(|d| d.message.contains("not found")));
}

// ---------------- G1 golden-emission ----------------

fn g1_rule() -> Box<GoldenEmission> {
    Box::new(GoldenEmission::default())
}

const G1_BASELINE: &str =
    "{\n  \"name\": \"gate\",\n  \"outcomes\": [\n    {\n      \"scenario\": \"baseline\",\n      \"succeeded\": true\n    }\n  ]\n}\n";

fn g1_src(body: &str) -> String {
    format!(
        "pub struct Report;\nimpl Report {{\n    pub fn canonical_json(&self) -> String {{\n        \
         use serde_json::Value;\n{body}        String::new()\n    }}\n}}\n"
    )
}

#[test]
fn g1_unguarded_novel_key_is_flagged() {
    let src = g1_src(
        "        let mut fields = vec![\n            (\"scenario\", Value::Str(self.scenario.clone())),\n            (\"stall_ratio\", Value::U64(self.stall_ratio as u64)),\n        ];\n",
    );
    let diags = run_aux(
        g1_rule(),
        &[("crates/chaos/src/campaign.rs", &src)],
        &[("crates/bench/golden/campaign_gate.json", G1_BASELINE)],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "G1");
    assert!(diags[0].message.contains("stall_ratio"));
    assert!(!diags[0].message.contains("scenario\" "), "baseline keys are clean");
}

#[test]
fn g1_guarded_novel_key_is_clean() {
    let src = g1_src(
        "        let mut fields = vec![\n            (\"succeeded\", Value::Bool(self.succeeded)),\n        ];\n        if self.stall_ratio > 0 {\n            fields.push((\"stall_ratio\", Value::U64(self.stall_ratio as u64)));\n        }\n",
    );
    let diags = run_aux(
        g1_rule(),
        &[("crates/chaos/src/campaign.rs", &src)],
        &[("crates/bench/golden/campaign_gate.json", G1_BASELINE)],
    );
    assert!(diags.is_empty(), "the non-zero-only idiom is the sanctioned path: {diags:?}");
}

#[test]
fn g1_if_let_guard_also_counts() {
    let src = g1_src(
        "        let mut fields = vec![\n            (\"succeeded\", Value::Bool(self.succeeded)),\n        ];\n        if let Some(v) = self.verdict {\n            fields.push((\"verdict\", Value::Bool(v)));\n        }\n",
    );
    let diags = run_aux(
        g1_rule(),
        &[("crates/chaos/src/campaign.rs", &src)],
        &[("crates/bench/golden/campaign_gate.json", G1_BASELINE)],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn g1_allow_marks_an_intended_rebless() {
    let src = g1_src(
        "        let mut fields = vec![\n            // alm-lint: allow(golden-emission) — baseline re-bless lands with this PR\n            (\"stall_ratio\", Value::U64(self.stall_ratio as u64)),\n        ];\n",
    );
    let diags = run_aux(
        g1_rule(),
        &[("crates/chaos/src/campaign.rs", &src)],
        &[("crates/bench/golden/campaign_gate.json", G1_BASELINE)],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn g1_missing_baseline_is_itself_a_finding() {
    let src = g1_src("");
    let diags = run_aux(g1_rule(), &[("crates/chaos/src/campaign.rs", &src)], &[]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("golden baseline"));
}

#[test]
fn g1_missing_serializer_is_itself_a_finding() {
    let diags = run_aux(
        g1_rule(),
        &[("crates/chaos/src/campaign.rs", "pub fn to_json() -> String { String::new() }\n")],
        &[("crates/bench/golden/campaign_gate.json", G1_BASELINE)],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("canonical_json"));
}

// ---------------- R1 rng-collision ----------------

fn r1_rule() -> Box<RngCollision> {
    Box::new(RngCollision)
}

#[test]
fn r1_flags_same_seed_same_label_shape() {
    let src = "pub fn a(seed: u64, i: u64) -> u64 {\n    \
               let mut r = alm_des::rng::stream(seed, &format!(\"jitter/{}\", i));\n    r.next_u64()\n}\n\
               pub fn b(seed: u64, j: u64) -> u64 {\n    \
               let mut r = alm_des::rng::stream(seed, &format!(\"jitter/{}\", j));\n    r.next_u64()\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert_eq!(diags.len(), 2, "both colliding sites are reported: {diags:?}");
    assert!(diags.iter().all(|d| d.code == "R1"));
    assert!(diags[0].message.contains("jitter/{}"), "{}", diags[0].message);
}

#[test]
fn r1_distinct_labels_and_distinct_seeds_are_clean() {
    let src = "pub fn a(seed: u64) -> u64 {\n    \
               let mut r = alm_des::rng::stream(seed, \"input-sizes\");\n    r.next_u64()\n}\n\
               pub fn b(seed: u64) -> u64 {\n    \
               let mut r = alm_des::rng::stream(seed, \"arrival-gaps\");\n    r.next_u64()\n}\n\
               pub fn c(seed: u64) -> u64 {\n    \
               let mut r = alm_des::rng::stream(seed ^ 1, \"input-sizes\");\n    r.next_u64()\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_same_shape_across_crates_is_clean() {
    // Stream namespaces are per-crate by convention; identical labels in
    // different crates draw from different engines.
    let a = "pub fn a(seed: u64) -> u64 {\n    let mut r = alm_des::rng::stream(seed, \"jitter\");\n    r.next_u64()\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", a), ("crates/sim/src/b.rs", a)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_flags_loop_label_omitting_loop_variable() {
    let src = "pub fn shuffle(seed: u64, xs: &[u64]) -> u64 {\n    let mut acc = 0;\n    \
               for x in xs {\n        let mut r = alm_des::rng::stream(seed, \"shuffle-order\");\n        \
               acc += r.next_u64() ^ x;\n    }\n    acc\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("omits enclosing loop variable `x`"), "{}", diags[0].message);
}

#[test]
fn r1_loop_label_naming_the_variable_is_clean() {
    let src = "pub fn shuffle(seed: u64, xs: &[u64]) -> u64 {\n    let mut acc = 0;\n    \
               for x in xs {\n        let mut r = alm_des::rng::stream(seed, &format!(\"shuffle-order/{x}\"));\n        \
               acc += r.next_u64();\n    }\n    acc\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_loop_variable_in_the_seed_expression_also_counts() {
    let src = "pub fn shuffle(seed: u64, xs: &[u64]) -> u64 {\n    let mut acc = 0;\n    \
               for x in xs {\n        let mut r = alm_des::rng::stream(seed ^ x, \"shuffle-order\");\n        \
               acc += r.next_u64();\n    }\n    acc\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_resolves_labels_bound_to_a_nearby_format() {
    let src = "pub fn a(seed: u64, k: u64) -> u64 {\n    \
               let label = format!(\"degraded-loss/{k}\");\n    \
               let mut r = alm_des::rng::stream(seed, &label);\n    r.next_u64()\n}\n\
               pub fn b(seed: u64, k: u64) -> u64 {\n    \
               let label = format!(\"degraded-loss/{k}\");\n    \
               let mut r = alm_des::rng::stream(seed, &label);\n    r.next_u64()\n}\n";
    let diags = run(r1_rule(), &[("crates/sim/src/a.rs", src)]);
    assert_eq!(diags.len(), 2, "variable labels resolve through let-bindings: {diags:?}");
}

#[test]
fn r1_allow_with_reason_suppresses() {
    let src = "pub fn shuffle(seed: u64, xs: &[u64]) -> u64 {\n    let mut acc = 0;\n    \
               for x in xs {\n        // alm-lint: allow(rng-collision) — one stream across the loop is the fairness model\n        \
               let mut r = alm_des::rng::stream(seed, \"shuffle-order\");\n        \
               acc += r.next_u64() ^ x;\n    }\n    acc\n}\n";
    let diags = run(r1_rule(), &[("crates/sched/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn r1_test_code_may_reuse_streams() {
    // Determinism tests deliberately derive the same stream twice.
    let src = "#[cfg(test)]\nmod tests {\n    fn t(seed: u64) {\n        \
               let a = alm_des::rng::stream(seed, \"replay\");\n        \
               let b = alm_des::rng::stream(seed, \"replay\");\n    }\n}\n";
    let diags = run(r1_rule(), &[("crates/des/src/a.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}
