//! Shared file discovery.
//!
//! Every rule sees the same file set, collected by this one walker, so the
//! exclusions (build output, vendored shims, golden reports, the lint's own
//! fixture corpus) are stated exactly once and no rule can accidentally
//! scan a vendored or generated file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Path prefixes (workspace-relative, `/`-separated) that are never
/// scanned. `target` and hidden directories are excluded wherever they
/// appear; the rest are exact prefixes.
const EXCLUDED_PREFIXES: &[&str] = &[
    // Vendored API-compatible stand-ins for crates.io deps: not ours.
    "shims/",
    // Checked-in golden campaign reports (JSON today, but the exclusion is
    // the guarantee, not the file extension).
    "crates/bench/golden/",
    // The lint's fixture corpus: deliberately violating sources.
    "crates/lint/tests/fixtures/",
];

/// Recursively collect workspace-relative paths of `.rs` sources under
/// `root`, honoring the shared exclusions, in sorted (deterministic) order.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Workspace-relative directory of the committed golden baselines. The
/// directory is *excluded* from source scanning (the reports are generated
/// JSON, not code) but the G1 emission-safety rule needs the baseline key
/// set, so the walker exposes it as auxiliary (non-source) files.
pub const GOLDEN_DIR: &str = "crates/bench/golden/";

/// Collect workspace-relative paths of `.json` golden baselines, sorted.
/// An absent golden directory is not an error — the rule that consumes
/// these reports the missing baseline itself.
pub fn golden_baselines(root: &Path) -> Vec<String> {
    let dir = root.join(GOLDEN_DIR);
    let Ok(entries) = fs::read_dir(&dir) else { return Vec::new() };
    let mut out: Vec<String> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| format!("{GOLDEN_DIR}{}", p.file_name().unwrap_or_default().to_string_lossy()))
        .collect();
    out.sort();
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_of(root, &path);
        if EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path.
fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
    if path.is_dir() {
        s.push('/');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excludes_are_prefixes_of_the_real_layout() {
        // Guard against the exclusion list silently rotting if directories
        // are renamed: each prefix names a path segment structure that the
        // walker compares literally.
        for p in EXCLUDED_PREFIXES {
            assert!(p.ends_with('/'), "{p} must be a directory prefix");
        }
    }

    #[test]
    fn walks_and_excludes() {
        let dir = std::env::temp_dir().join(format!("alm-lint-walk-{}", std::process::id()));
        let mk = |rel: &str, body: &str| {
            let p = dir.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, body).unwrap();
        };
        mk("crates/a/src/lib.rs", "");
        mk("crates/bench/golden/x.rs", "");
        mk("crates/lint/tests/fixtures/f.rs", "");
        mk("shims/rand/src/lib.rs", "");
        mk("target/debug/build.rs", "");
        mk("src/lib.rs", "");
        mk("notes.md", "");
        let got = rust_sources(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
        assert_eq!(got, vec!["crates/a/src/lib.rs".to_string(), "src/lib.rs".to_string()]);
    }
}
