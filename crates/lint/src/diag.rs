//! Structured diagnostics and their rendering.

use alm_metrics::TextTable;

/// One finding: rule code + id, site, and a human-actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Short code, e.g. `D1`.
    pub code: &'static str,
    /// Rule id as used in `allow(...)` annotations, e.g. `unordered-iter`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn site(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Render diagnostics as the standard report table, sorted for stable output.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    let mut t = TextTable::new("alm-lint diagnostics", &["rule", "site", "message"]);
    for d in sorted {
        t.row(&[format!("{} {}", d.code, d.rule), d.site(), d.message.clone()]);
    }
    t.render_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_sorts_by_site() {
        let diags = vec![
            Diagnostic { code: "D2", rule: "wall-clock", file: "b.rs".into(), line: 9, message: "m".into() },
            Diagnostic {
                code: "D1",
                rule: "unordered-iter",
                file: "a.rs".into(),
                line: 3,
                message: "n".into(),
            },
        ];
        let s = render(&diags);
        assert!(s.find("a.rs:3").unwrap() < s.find("b.rs:9").unwrap());
    }
}
