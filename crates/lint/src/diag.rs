//! Structured diagnostics and their rendering.

use alm_metrics::TextTable;

/// One finding: rule code + id, site, and a human-actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Short code, e.g. `D1`.
    pub code: &'static str,
    /// Rule id as used in `allow(...)` annotations, e.g. `unordered-iter`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn site(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Render diagnostics as the standard report table, sorted for stable output.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    let mut t = TextTable::new("alm-lint diagnostics", &["rule", "site", "message"]);
    for d in sorted {
        t.row(&[format!("{} {}", d.code, d.rule), d.site(), d.message.clone()]);
    }
    t.render_text()
}

/// Render diagnostics as a machine-readable JSON array with a fixed key
/// order (`file`, `line`, `code`, `rule`, `message`), sorted like the
/// table renderer so the artifact is byte-stable across runs. Hand-rolled:
/// the lint crate stays dependency-free by design.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    let mut out = String::from("[");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"code\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(d.code),
            json_str(d.rule),
            json_str(&d.message)
        ));
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_escaped_and_key_stable() {
        let diags = vec![
            Diagnostic {
                code: "D2",
                rule: "wall-clock",
                file: "b.rs".into(),
                line: 9,
                message: "say \"hi\"".into(),
            },
            Diagnostic {
                code: "D1",
                rule: "unordered-iter",
                file: "a.rs".into(),
                line: 3,
                message: "n".into(),
            },
        ];
        let s = render_json(&diags);
        assert!(s.find("a.rs").unwrap() < s.find("b.rs").unwrap(), "sorted by site");
        assert!(s.contains("\\\"hi\\\""), "quotes escaped: {s}");
        let obj = s.lines().nth(1).unwrap();
        let order: Vec<usize> = ["\"file\"", "\"line\"", "\"code\"", "\"rule\"", "\"message\""]
            .iter()
            .map(|k| obj.find(k).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "stable key order: {obj}");
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn render_sorts_by_site() {
        let diags = vec![
            Diagnostic { code: "D2", rule: "wall-clock", file: "b.rs".into(), line: 9, message: "m".into() },
            Diagnostic {
                code: "D1",
                rule: "unordered-iter",
                file: "a.rs".into(),
                line: 3,
                message: "n".into(),
            },
        ];
        let s = render(&diags);
        assert!(s.find("a.rs:3").unwrap() < s.find("b.rs:9").unwrap());
    }
}
