//! P1 `counter-parity`: cross-engine observability parity.
//!
//! The repo's core claim is that the threaded runtime and the DES simulator
//! reproduce the same recovery semantics — which is only checkable for
//! behavior both engines *report*. A counter that exists in `JobReport` but
//! not `SimReport` (or vice versa) is observability one engine silently
//! lacks; a counter neither consumed by the differential validator is a
//! number nobody would notice drifting. So: every integer counter field of
//! either report struct must (a) have a same-named — or explicitly aliased —
//! counterpart field in the other engine's report, and (b) be read somewhere
//! in the validator. Intentional asymmetries (unit mismatches, counters
//! whose counterpart is a structured list) carry an allow annotation with
//! the reason on the declaration line.

use crate::diag::Diagnostic;
use crate::source::{has_token, SourceFile};
use crate::Workspace;

use super::Rule;

pub struct CounterParity {
    /// (file, struct) pair for the runtime-side report.
    pub left_file: String,
    pub left_struct: String,
    /// (file, struct) pair for the sim-side report.
    pub right_file: String,
    pub right_struct: String,
    /// Files in which every counter must be read (the differential
    /// validator). A counter named in any one of them counts as consumed.
    pub consumers: Vec<String>,
    /// Cross-engine field-name aliases, `(left_name, right_name)` — for
    /// counters whose names legitimately differ (e.g. unit suffixes).
    pub aliases: Vec<(String, String)>,
}

impl Default for CounterParity {
    fn default() -> Self {
        CounterParity {
            left_file: "crates/runtime/src/report.rs".to_string(),
            left_struct: "JobReport".to_string(),
            right_file: "crates/sim/src/trace.rs".to_string(),
            right_struct: "SimReport".to_string(),
            consumers: vec!["crates/chaos/src/analyze.rs".to_string()],
            // job completion time is milliseconds (u64) on the runtime and
            // virtual seconds (f64) in the DES; same quantity, named pair.
            aliases: vec![("job_time_ms".to_string(), "job_secs".to_string())],
        }
    }
}

/// A field type that makes the field a *counter* for parity purposes:
/// exactly an unsigned integer. Structured fields (maps, vecs, options,
/// floats, bools) are compared by other means and are out of scope.
fn is_counter_type(ty: &str) -> bool {
    matches!(ty, "u8" | "u16" | "u32" | "u64" | "u128" | "usize")
}

/// Fields of `struct_name` as `(name, type, 1-based decl line)` triples.
fn typed_fields(file: &SourceFile, struct_name: &str) -> Vec<(String, String, usize)> {
    let header = format!("struct {struct_name}");
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut in_struct = false;
    for (idx, line) in file.code.iter().enumerate() {
        if !in_struct {
            if line.contains(&header) && line.contains('{') {
                in_struct = true;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let t = line.trim();
        if depth == 1 {
            let t = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(colon) = t.find(':') {
                let name = t[..colon].trim();
                let ty = t[colon + 1..].trim().trim_end_matches(',').trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push((name.to_string(), ty.to_string(), idx + 1));
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
    }
    out
}

impl Rule for CounterParity {
    fn id(&self) -> &'static str {
        "counter-parity"
    }

    fn code(&self) -> &'static str {
        "P1"
    }

    fn description(&self) -> &'static str {
        "every engine-report counter has a cross-engine counterpart and a validator read"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let find = |rel: &str| ws.files.iter().find(|f| f.rel == rel);
        // Anchor files are findings when missing, so a rename cannot
        // silently disable the rule (same convention as V1/C1).
        let missing_anchor = |rel: &str, what: &str, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                code: self.code(),
                rule: self.id(),
                file: rel.to_string(),
                line: 1,
                message: format!("{what} file not found — counter parity cannot be checked"),
            });
        };
        let (Some(left), Some(right)) = (find(&self.left_file), find(&self.right_file)) else {
            if find(&self.left_file).is_none() {
                missing_anchor(&self.left_file, "runtime report", &mut out);
            }
            if find(&self.right_file).is_none() {
                missing_anchor(&self.right_file, "sim report", &mut out);
            }
            return out;
        };
        let consumer_text: String = self
            .consumers
            .iter()
            .filter_map(|rel| find(rel))
            .flat_map(|f| f.code.iter().zip(&f.is_test).filter(|(_, t)| !**t).map(|(l, _)| l.as_str()))
            .collect::<Vec<_>>()
            .join("\n");
        for rel in &self.consumers {
            if find(rel).is_none() {
                missing_anchor(rel, "validator (consumer)", &mut out);
            }
        }

        let lf = typed_fields(left, &self.left_struct);
        let rf = typed_fields(right, &self.right_struct);
        for (file, fields, own_struct, other, other_file, forward) in [
            (left, &lf, &self.left_struct, &rf, &self.right_file, true),
            (right, &rf, &self.right_struct, &lf, &self.left_file, false),
        ] {
            if fields.is_empty() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: 1,
                    message: format!("struct `{own_struct}` not found or has no fields"),
                });
                continue;
            }
            for (name, ty, decl_line) in fields {
                if !is_counter_type(ty) || file.allowed(self.id(), *decl_line) {
                    continue;
                }
                let counterpart = self
                    .aliases
                    .iter()
                    .find_map(|(l, r)| {
                        let (own, peer) = if forward { (l, r) } else { (r, l) };
                        (own == name).then_some(peer.as_str())
                    })
                    .unwrap_or(name.as_str());
                if !other.iter().any(|(n, _, _)| n == counterpart) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: *decl_line,
                        message: format!(
                            "counter `{name}` of `{own_struct}` has no counterpart field \
                             `{counterpart}` in {other_file} — one engine grew observability \
                             the other lacks; mirror it, register an alias, or annotate the \
                             field with a reason"
                        ),
                    });
                }
                if !has_token(&consumer_text, name) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: *decl_line,
                        message: format!(
                            "counter `{name}` of `{own_struct}` is never read by the \
                             differential validator ({}) — an unconsumed counter can drift \
                             unnoticed; consume it or annotate the field with a reason",
                            self.consumers.join(", ")
                        ),
                    });
                }
            }
        }
        out
    }
}
