//! D2 `wall-clock`: no wall-clock reads outside the runtime engine.
//!
//! The DES and everything downstream of it (core failure model, chaos
//! campaigns, calibration) must compute over *virtual* time
//! (`alm_des::time`). A stray `Instant::now()` or `SystemTime` read makes
//! results depend on host load, which shows up as flaky golden-gate diffs
//! long before anyone suspects the clock. Only `crates/runtime` — the
//! thread-backed execution engine whose entire point is real elapsed time —
//! may touch the wall clock.

use crate::diag::Diagnostic;
use crate::source::has_token;
use crate::Workspace;

use super::Rule;

const BANNED: &[(&str, &str)] = &[
    ("Instant::now", "`Instant::now()` reads the wall clock"),
    ("SystemTime", "`SystemTime` reads the wall clock"),
];

pub struct WallClock {
    /// Path prefixes exempted from the rule (the real-time engine).
    pub exempt_prefixes: Vec<String>,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock { exempt_prefixes: vec!["crates/runtime/".to_string()] }
    }
}

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn code(&self) -> &'static str {
        "D2"
    }

    fn description(&self) -> &'static str {
        "wall-clock reads are confined to crates/runtime"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if self.exempt_prefixes.iter().any(|p| file.rel.starts_with(p.as_str())) {
                continue;
            }
            for (idx, line) in file.code.iter().enumerate() {
                // Test/bench/example code may time itself; virtual-time
                // purity is a property of the engines, not the harnesses.
                if file.is_test[idx] {
                    continue;
                }
                for (tok, why) in BANNED {
                    if has_token(line, tok) && !file.allowed(self.id(), idx + 1) {
                        out.push(Diagnostic {
                            code: self.code(),
                            rule: self.id(),
                            file: file.rel.clone(),
                            line: idx + 1,
                            message: format!(
                                "{why}; deterministic code must use virtual time \
                                 (alm_des::time) — only crates/runtime may use the wall clock"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}
