//! D3 `rng-stream`: all randomness flows through `alm_des::rng::stream`.
//!
//! Reproducibility of a campaign is the product of every RNG draw in it.
//! `alm_des::rng::stream(seed, label)` derives a named, seed-stable stream;
//! anything else — `thread_rng`, OS entropy, seeding from the clock — makes
//! a run unrepeatable, which breaks replay of the exact schedules that
//! triggered a failure-amplification episode. Unlike D1/D2 this rule also
//! covers test code: a test that draws from ambient entropy is a test that
//! cannot be re-run on failure.

use crate::diag::Diagnostic;
use crate::source::has_token;
use crate::Workspace;

use super::Rule;

const BANNED: &[(&str, &str)] = &[
    ("thread_rng", "`thread_rng` is seeded from OS entropy"),
    ("from_entropy", "`from_entropy` is unseeded"),
    ("from_os_rng", "`from_os_rng` is unseeded"),
    ("OsRng", "`OsRng` draws OS entropy directly"),
    ("random_seed", "deriving a seed at run time defeats replay"),
];

#[derive(Default)]
pub struct Randomness;

impl Rule for Randomness {
    fn id(&self) -> &'static str {
        "rng-stream"
    }

    fn code(&self) -> &'static str {
        "D3"
    }

    fn description(&self) -> &'static str {
        "randomness must come from alm_des::rng::stream"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            for (idx, line) in file.code.iter().enumerate() {
                for (tok, why) in BANNED {
                    if has_token(line, tok) && !file.allowed(self.id(), idx + 1) {
                        out.push(Diagnostic {
                            code: self.code(),
                            rule: self.id(),
                            file: file.rel.clone(),
                            line: idx + 1,
                            message: format!(
                                "{why}; derive a named stream via alm_des::rng::stream(seed, label)"
                            ),
                        });
                    }
                }
                // `rand::random` has no word boundary trick: `::` splits it.
                if line.contains("rand::random") && !file.allowed(self.id(), idx + 1) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: idx + 1,
                        message: "`rand::random` draws thread-local OS entropy; derive a named \
                                  stream via alm_des::rng::stream(seed, label)"
                            .to_string(),
                    });
                }
            }
        }
        out
    }
}
