//! Rule registry.
//!
//! Each rule is a pure function from the loaded [`Workspace`] to a list of
//! [`Diagnostic`]s. Rules carry their scope/configuration as data so the
//! fixture tests can re-point them at a corpus instead of the real tree.

mod config_coverage;
mod counter_parity;
mod fault_vocab;
mod golden_emission;
mod lock_order;
mod randomness;
mod rng_collision;
mod unordered_iter;
mod wall_clock;

pub use config_coverage::ConfigCoverage;
pub use counter_parity::CounterParity;
pub use fault_vocab::{EnumCoverage, FaultVocab};
pub use golden_emission::GoldenEmission;
pub use lock_order::LockOrder;
pub use randomness::Randomness;
pub use rng_collision::RngCollision;
pub use unordered_iter::UnorderedIter;
pub use wall_clock::WallClock;

use crate::diag::Diagnostic;
use crate::Workspace;

/// One machine-checked invariant.
pub trait Rule {
    /// Rule id as written in `allow(...)` annotations, e.g. `unordered-iter`.
    fn id(&self) -> &'static str;
    /// Short code used in reports, e.g. `D1`.
    fn code(&self) -> &'static str;
    /// One-line description of the bug class the rule prevents.
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// The full default rule set in report order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnorderedIter::default()),
        Box::new(WallClock::default()),
        Box::new(Randomness),
        Box::new(FaultVocab::default()),
        Box::new(ConfigCoverage::default()),
        Box::new(ConfigCoverage::of(
            "crates/sched/src/config.rs",
            "SchedConfig",
            &["validate", "scaled_for_tests"],
        )),
        Box::new(ConfigCoverage::of("crates/sched/src/config.rs", "TenantSpec", &["validate"])),
        Box::new(ConfigCoverage::of(
            "crates/types/src/config.rs",
            "MemConfig",
            &["validate", "scaled_for_tests"],
        )),
        Box::new(LockOrder::default()),
        Box::new(CounterParity::default()),
        Box::new(GoldenEmission::default()),
        Box::new(RngCollision),
    ]
}
