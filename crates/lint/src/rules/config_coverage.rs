//! C1 `config-coverage`: every `YarnConfig` field is validated and pinned.
//!
//! The config struct is the experiment surface: each field changes failure
//! amplification behavior. A field that `validate()` never looks at is a
//! field a campaign can silently set to nonsense (zero heap, 0ms retry
//! delay); a field that `scaled_for_tests()` fills from `..Default::default()`
//! is a field whose test-scale value drifts whenever the default moves,
//! invalidating the checked-in golden reports. So: every field must be
//! *named* in both functions.

use crate::diag::Diagnostic;
use crate::source::{has_token, SourceFile};
use crate::Workspace;

use super::Rule;

pub struct ConfigCoverage {
    /// Workspace-relative path of the file declaring the struct.
    pub decl_file: String,
    pub struct_name: String,
    /// Functions in the same file that must each name every field.
    pub fns: Vec<String>,
}

impl Default for ConfigCoverage {
    fn default() -> Self {
        ConfigCoverage {
            decl_file: "crates/types/src/config.rs".to_string(),
            struct_name: "YarnConfig".to_string(),
            fns: vec!["validate".to_string(), "scaled_for_tests".to_string()],
        }
    }
}

impl Rule for ConfigCoverage {
    fn id(&self) -> &'static str {
        "config-coverage"
    }

    fn code(&self) -> &'static str {
        "C1"
    }

    fn description(&self) -> &'static str {
        "every YarnConfig field is named in validate() and scaled_for_tests()"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let Some(file) = ws.files.iter().find(|f| f.rel == self.decl_file) else {
            return vec![Diagnostic {
                code: self.code(),
                rule: self.id(),
                file: self.decl_file.clone(),
                line: 1,
                message: format!("config file declaring `{}` not found", self.struct_name),
            }];
        };
        let fields = struct_fields(file, &self.struct_name);
        let mut out = Vec::new();
        if fields.is_empty() {
            out.push(Diagnostic {
                code: self.code(),
                rule: self.id(),
                file: file.rel.clone(),
                line: 1,
                message: format!("struct `{}` not found or has no fields", self.struct_name),
            });
            return out;
        }
        for fn_name in &self.fns {
            let Some(body) = fn_body(file, fn_name) else {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: 1,
                    message: format!("required fn `{fn_name}` not found in {}", file.rel),
                });
                continue;
            };
            for (field, decl_line) in &fields {
                if file.allowed(self.id(), *decl_line) {
                    continue;
                }
                if !has_token(&body, field) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: *decl_line,
                        message: format!(
                            "field `{field}` of `{}` is never named in `{fn_name}()` — \
                             check or pin it there, or annotate the field with a reason",
                            self.struct_name
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Public fields of `struct_name`: (name, 1-based declaration line).
fn struct_fields(file: &SourceFile, struct_name: &str) -> Vec<(String, usize)> {
    let header = format!("struct {struct_name}");
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut in_struct = false;
    for (idx, line) in file.code.iter().enumerate() {
        if !in_struct {
            if line.contains(&header) && line.contains('{') {
                in_struct = true;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let t = line.trim();
        if depth == 1 {
            let t = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(colon) = t.find(':') {
                let name = t[..colon].trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push((name.to_string(), idx + 1));
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
    }
    out
}

/// The stripped body text of `fn <name>(…) { … }`, brace-matched.
fn fn_body(file: &SourceFile, name: &str) -> Option<String> {
    let header = format!("fn {name}(");
    let start = file.code.iter().position(|l| l.contains(&header))?;
    let mut depth: i64 = 0;
    let mut opened = false;
    let mut body = String::new();
    for line in file.code.iter().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        body.push_str(line);
        body.push('\n');
        if opened && depth <= 0 {
            break;
        }
    }
    Some(body)
}
