//! C1 `config-coverage`: every config-struct field is validated and pinned.
//!
//! A config struct is the experiment surface: each field changes failure
//! amplification behavior. A field that `validate()` never looks at is a
//! field a campaign can silently set to nonsense (zero heap, 0ms retry
//! delay); a field that `scaled_for_tests()` fills from `..Default::default()`
//! is a field whose test-scale value drifts whenever the default moves,
//! invalidating the checked-in golden reports. So: every field must be
//! *named* in every required function. The rule is parameterized over
//! `(decl_file, struct_name, fns)`, with registered instances for
//! `YarnConfig`, `SchedConfig` and `TenantSpec`.

use crate::diag::Diagnostic;
use crate::source::{has_token, SourceFile};
use crate::Workspace;

use super::Rule;

pub struct ConfigCoverage {
    /// Workspace-relative path of the file declaring the struct.
    pub decl_file: String,
    pub struct_name: String,
    /// Functions in the same file that must each name every field.
    pub fns: Vec<String>,
}

impl Default for ConfigCoverage {
    fn default() -> Self {
        ConfigCoverage::of("crates/types/src/config.rs", "YarnConfig", &["validate", "scaled_for_tests"])
    }
}

impl ConfigCoverage {
    /// An instance of the rule pointed at one struct. `fns` are the
    /// functions in the same file that must each name every field.
    pub fn of(decl_file: &str, struct_name: &str, fns: &[&str]) -> ConfigCoverage {
        ConfigCoverage {
            decl_file: decl_file.to_string(),
            struct_name: struct_name.to_string(),
            fns: fns.iter().map(|f| f.to_string()).collect(),
        }
    }
}

impl Rule for ConfigCoverage {
    fn id(&self) -> &'static str {
        "config-coverage"
    }

    fn code(&self) -> &'static str {
        "C1"
    }

    fn description(&self) -> &'static str {
        "every config-struct field is named in its validate()/pinning functions"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let Some(file) = ws.files.iter().find(|f| f.rel == self.decl_file) else {
            return vec![Diagnostic {
                code: self.code(),
                rule: self.id(),
                file: self.decl_file.clone(),
                line: 1,
                message: format!("config file declaring `{}` not found", self.struct_name),
            }];
        };
        let (fields, struct_line) = struct_fields(file, &self.struct_name);
        let mut out = Vec::new();
        if fields.is_empty() {
            out.push(Diagnostic {
                code: self.code(),
                rule: self.id(),
                file: file.rel.clone(),
                line: 1,
                message: format!("struct `{}` not found or has no fields", self.struct_name),
            });
            return out;
        }
        for fn_name in &self.fns {
            let Some(body) = fn_body(file, fn_name, struct_line) else {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: 1,
                    message: format!("required fn `{fn_name}` not found in {}", file.rel),
                });
                continue;
            };
            for (field, decl_line) in &fields {
                if file.allowed(self.id(), *decl_line) {
                    continue;
                }
                if !has_token(&body, field) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: *decl_line,
                        message: format!(
                            "field `{field}` of `{}` is never named in `{fn_name}()` — \
                             check or pin it there, or annotate the field with a reason",
                            self.struct_name
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Public fields of `struct_name` (name, 1-based declaration line), plus
/// the 0-based line the struct itself is declared on.
fn struct_fields(file: &SourceFile, struct_name: &str) -> (Vec<(String, usize)>, usize) {
    let header = format!("struct {struct_name}");
    let mut out = Vec::new();
    let mut struct_line = 0usize;
    let mut depth: i64 = 0;
    let mut in_struct = false;
    for (idx, line) in file.code.iter().enumerate() {
        if !in_struct {
            if line.contains(&header) && line.contains('{') {
                in_struct = true;
                struct_line = idx;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let t = line.trim();
        if depth == 1 {
            let t = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(colon) = t.find(':') {
                let name = t[..colon].trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push((name.to_string(), idx + 1));
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
    }
    (out, struct_line)
}

/// The stripped body text of `fn <name>(…) { … }`, brace-matched. The
/// search starts at `from` (the struct declaration line) so a file with
/// several config structs resolves each struct's own `validate()` — impl
/// blocks follow their struct in this codebase.
fn fn_body(file: &SourceFile, name: &str, from: usize) -> Option<String> {
    let header = format!("fn {name}(");
    let start = from + file.code.iter().skip(from).position(|l| l.contains(&header))?;
    let mut depth: i64 = 0;
    let mut opened = false;
    let mut body = String::new();
    for line in file.code.iter().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        body.push_str(line);
        body.push('\n');
        if opened && depth <= 0 {
            break;
        }
    }
    Some(body)
}
