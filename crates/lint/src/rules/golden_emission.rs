//! G1 `golden-emission`: canonical_json fields stay golden-gate safe.
//!
//! The campaign gate diffs `canonical_json` output byte-for-byte against a
//! committed golden baseline. The workspace convention — re-verified by
//! hand in every PR so far — is that a *new* serialized field must be
//! emitted behind a non-zero / `Some`-only guard, so campaigns that never
//! exercise the new behavior keep producing byte-identical reports. This
//! rule makes the convention a theorem: every key emitted *unconditionally*
//! inside `canonical_json` must already exist in the committed baseline;
//! anything else must sit inside an `if` guard (or carry an allow
//! annotation explaining why a re-bless is intended).
//!
//! Key literals live inside strings, which the stripped view blanks — but
//! stripping preserves columns, so the rule walks the raw text at positions
//! the stripped text proves are real code.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::source::has_token;
use crate::Workspace;

use super::Rule;

pub struct GoldenEmission {
    /// File containing the canonical serializer.
    pub emit_file: String,
    /// The serializer function whose body is scanned.
    pub emit_fn: String,
    /// Workspace-relative path of the committed golden baseline (loaded as
    /// auxiliary text — the walker excludes it from source scanning).
    pub baseline: String,
}

impl Default for GoldenEmission {
    fn default() -> Self {
        GoldenEmission {
            emit_file: "crates/chaos/src/campaign.rs".to_string(),
            emit_fn: "canonical_json".to_string(),
            baseline: "crates/bench/golden/campaign_gate.json".to_string(),
        }
    }
}

/// Keys present in the baseline JSON: `"<ident>"` immediately followed by
/// a colon. Golden values are scenario/mode strings never followed by `:`,
/// so this stays unambiguous without a JSON parser.
fn baseline_keys(text: &str) -> BTreeSet<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut keys = BTreeSet::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '"' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j > start && chars.get(j) == Some(&'"') {
                let mut k = j + 1;
                while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                    k += 1;
                }
                if chars.get(k) == Some(&':') {
                    keys.insert(chars[start..j].iter().collect());
                }
            }
            i = j.max(start);
        }
        i += 1;
    }
    keys
}

/// Emission sites on one line: `("key"` where the open paren survives in
/// the stripped view (real code, not a literal) and the line constructs a
/// `Value::…`. Returns `(key, char_offset_of_paren)` pairs.
fn emissions_on_line(raw: &str, code: &str) -> Vec<(String, usize)> {
    if !has_token(code, "Value") {
        return Vec::new();
    }
    let rc: Vec<char> = raw.chars().collect();
    let cc: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, w) in rc.windows(2).enumerate() {
        if w[0] != '(' || w[1] != '"' || cc.get(i) != Some(&'(') {
            continue;
        }
        let start = i + 2;
        let mut j = start;
        while j < rc.len() && (rc[j].is_alphanumeric() || rc[j] == '_') {
            j += 1;
        }
        if j > start && rc.get(j) == Some(&'"') {
            out.push((rc[start..j].iter().collect(), i));
        }
    }
    out
}

impl Rule for GoldenEmission {
    fn id(&self) -> &'static str {
        "golden-emission"
    }

    fn code(&self) -> &'static str {
        "G1"
    }

    fn description(&self) -> &'static str {
        "unconditional canonical_json fields must exist in the golden baseline"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mk = |file: &str, line: usize, message: String| Diagnostic {
            code: self.code(),
            rule: self.id(),
            file: file.to_string(),
            line,
            message,
        };
        let Some(file) = ws.files.iter().find(|f| f.rel == self.emit_file) else {
            return vec![mk(
                &self.emit_file,
                1,
                format!("serializer file declaring `{}` not found", self.emit_fn),
            )];
        };
        let header = format!("fn {}(", self.emit_fn);
        let Some(start) = file.code.iter().position(|l| l.contains(&header)) else {
            return vec![mk(
                &file.rel,
                1,
                format!("serializer fn `{}` not found in {}", self.emit_fn, file.rel),
            )];
        };
        let Some(baseline) = ws.aux.get(&self.baseline) else {
            return vec![mk(
                &self.baseline,
                1,
                format!("golden baseline `{}` not found — emission safety cannot be checked", self.baseline),
            )];
        };
        let known = baseline_keys(baseline);

        let mut out = Vec::new();
        // Walk the fn body brace-matched, tracking which open braces were
        // introduced by an `if` on the same line (the non-zero / Some-only
        // guard idiom). An emission is guarded when any enclosing brace is
        // a guard brace, or an `if` precedes it on its own line.
        let mut guard_stack: Vec<bool> = Vec::new();
        let mut opened = false;
        for (idx, code) in file.code.iter().enumerate().skip(start) {
            let if_pos = token_pos(code, "if");
            for (key, at) in emissions_on_line(&file.raw[idx], code) {
                let guarded = guard_stack.iter().any(|g| *g) || if_pos.is_some_and(|p| p < at);
                if guarded || known.contains(&key) || file.allowed(self.id(), idx + 1) {
                    continue;
                }
                out.push(mk(
                    &file.rel,
                    idx + 1,
                    format!(
                        "`{}` emits `{key}` unconditionally but the golden baseline {} has \
                         no such key — gate it non-zero-only (the established idiom) or \
                         annotate the emission if a re-bless is intended",
                        self.emit_fn, self.baseline
                    ),
                ));
            }
            for (p, c) in code.chars().enumerate() {
                match c {
                    '{' => {
                        guard_stack.push(if_pos.is_some_and(|ip| ip < p));
                        opened = true;
                    }
                    '}' => {
                        guard_stack.pop();
                    }
                    _ => {}
                }
            }
            if opened && guard_stack.is_empty() {
                break;
            }
        }
        out
    }
}

/// Char offset of the first word-boundary occurrence of `needle` in `hay`.
fn token_pos(hay: &str, needle: &str) -> Option<usize> {
    let chars: Vec<char> = hay.chars().collect();
    let n: Vec<char> = needle.chars().collect();
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    (0..chars.len().saturating_sub(n.len() - 1)).find(|&i| {
        chars[i..i + n.len()] == n[..]
            && (i == 0 || !ident(chars[i - 1]))
            && chars.get(i + n.len()).is_none_or(|c| !ident(*c))
    })
}
