//! R1 `rng-collision`: named RNG streams must actually be distinct.
//!
//! D3 forces every draw through `alm_des::rng::stream(seed, label)`, but a
//! named stream is only as independent as its name: two call sites deriving
//! the same (seed, label) silently consume *one* stream — correlated
//! "independent" randomness that poisons differential comparisons — and a
//! label built inside a loop that omits the loop variable derives the
//! identical stream every iteration. This rule statically collects all
//! stream call sites (literal labels, inline `format!` labels, and labels
//! bound to a nearby `let <var> = format!(…)`), normalizes each to a
//! (seed-expression, label-shape) pair, then flags (a) two sites in one
//! crate with the same pair and (b) labels that omit an enclosing `for`
//! loop variable.
//!
//! Label text lives inside string literals, which the stripped view blanks;
//! stripping preserves columns, so structure (parens, commas) is balanced
//! on stripped chars while text is read from the raw line at the same
//! offsets.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::source::{has_token, SourceFile};
use crate::Workspace;

use super::Rule;

#[derive(Default)]
pub struct RngCollision;

const CALL: &str = "rng::stream(";

struct CallSite {
    file: String,
    line: usize,
    krate: String,
    seed: String,
    /// Label shape with every `format!` hole normalized to `{}`; `None`
    /// when the label could not be resolved statically.
    skeleton: Option<String>,
    /// Identifiers feeding the label: hole names plus format arguments.
    vars: BTreeSet<String>,
    /// Variables of enclosing `for` loops at the call site.
    loop_vars: Vec<String>,
    allowed: bool,
}

impl Rule for RngCollision {
    fn id(&self) -> &'static str {
        "rng-collision"
    }

    fn code(&self) -> &'static str {
        "R1"
    }

    fn description(&self) -> &'static str {
        "no two rng::stream call sites share a (seed, label) shape; loop labels name their loop variable"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut sites = Vec::new();
        for file in &ws.files {
            collect_sites(file, &mut sites);
        }
        let mut out = Vec::new();

        // (a) collisions: same crate, same normalized seed, same skeleton.
        let mut groups: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        for (i, s) in sites.iter().enumerate() {
            if let Some(sk) = &s.skeleton {
                groups.entry((s.krate.clone(), s.seed.clone(), sk.clone())).or_default().push(i);
            }
        }
        for ((_, seed, sk), members) in &groups {
            if members.len() < 2 {
                continue;
            }
            for &i in members {
                let s = &sites[i];
                if s.allowed {
                    continue;
                }
                let other = members.iter().map(|&j| &sites[j]).find(|o| o.line != s.line || o.file != s.file);
                let Some(other) = other else { continue };
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "derives the same RNG stream as {}:{} — seed `{seed}` with label \
                         shape `{sk}` on both sites silently correlates two \"independent\" \
                         streams; add a distinguishing label component or annotate with a reason",
                        other.file, other.line
                    ),
                });
            }
        }

        // (b) loop-variable omission: every enclosing `for` variable must
        // appear in the label holes/args or in the seed expression.
        for s in &sites {
            if s.allowed || s.skeleton.is_none() {
                continue;
            }
            let missing: Vec<&str> = s
                .loop_vars
                .iter()
                .filter(|lv| !s.vars.contains(*lv) && !has_token(&s.seed, lv))
                .map(|s| s.as_str())
                .collect();
            if !missing.is_empty() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "stream label `{}` omits enclosing loop variable{} {} — every \
                         iteration derives the identical stream; include {} in the label \
                         (or annotate with a reason if reuse is intended)",
                        s.skeleton.as_deref().unwrap_or(""),
                        if missing.len() > 1 { "s" } else { "" },
                        missing.iter().map(|m| format!("`{m}`")).collect::<Vec<_>>().join(", "),
                        if missing.len() > 1 { "them" } else { "it" },
                    ),
                });
            }
        }
        out
    }
}

fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() > 1 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        parts[0].to_string()
    }
}

fn collect_sites(file: &SourceFile, sites: &mut Vec<CallSite>) {
    let krate = crate_of(&file.rel);
    // Track enclosing `for` loops by brace depth as we walk the file.
    let mut depth: i64 = 0;
    let mut loops: Vec<(i64, String)> = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        if !file.is_test[idx] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(CALL) {
                let at = from + pos;
                from = at + CALL.len();
                if let Some(mut site) = parse_site(file, idx, at) {
                    site.krate = krate.clone();
                    site.loop_vars = loops.iter().map(|(_, v)| v.clone()).collect();
                    site.allowed = file.allowed("rng-collision", idx + 1);
                    sites.push(site);
                }
            }
        }
        // `for <pat> in …` opening a body on this line registers its
        // pattern idents at the pre-brace depth.
        if has_token(code, "for") && code.contains('{') {
            if let Some(fpos) = code.find("for ") {
                if let Some(inpos) = code[fpos..].find(" in ") {
                    let pat = &code[fpos + 4..fpos + inpos];
                    for var in idents_in(pat) {
                        loops.push((depth, var));
                    }
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        loops.retain(|(open, _)| *open < depth);
    }
}

/// Identifier tokens in `s`, excluding `self`/`ctx`/`mut`/`ref` and `_`.
fn idents_in(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if let Some(first) = cur.chars().next() {
            if (first.is_alphabetic() || first == '_')
                && !matches!(cur.as_str(), "self" | "ctx" | "mut" | "ref" | "_")
            {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    out
}

/// Parse one `rng::stream(` call starting at char offset `at` of line
/// `idx` (0-based). Single-line calls only — every real site is; a call
/// split across lines simply yields no site.
fn parse_site(file: &SourceFile, idx: usize, at: usize) -> Option<CallSite> {
    let code: Vec<char> = file.code[idx].chars().collect();
    let raw: Vec<char> = file.raw[idx].chars().collect();
    let args_start = at + CALL.len();
    // Balance on stripped chars (literals are blanked, so their parens
    // cannot skew the depth) to find the top-level comma and close paren.
    let mut bal: i64 = 0;
    let mut comma = None;
    let mut close = None;
    for (i, &c) in code.iter().enumerate().skip(args_start) {
        match c {
            '(' | '[' | '{' => bal += 1,
            ')' | ']' | '}' if bal > 0 => bal -= 1,
            ')' => {
                close = Some(i);
                break;
            }
            ',' if bal == 0 && comma.is_none() => comma = Some(i),
            _ => {}
        }
    }
    let (comma, close) = (comma?, close?);
    let seed_raw: String = raw.get(args_start..comma)?.iter().collect();
    let seed = normalize_seed(&seed_raw);
    let label_code: String = code[comma + 1..close].iter().collect();
    let label_raw: String = raw.get(comma + 1..close)?.iter().collect();

    let (skeleton, vars) = if let Some(fpos) = label_code.find("format!") {
        parse_format(&label_raw, &label_code, fpos)
    } else if label_raw.contains('"') {
        // Plain literal label.
        let lit = read_string_lit(&label_raw, 0);
        (lit.map(|(s, _)| s), BTreeSet::new())
    } else {
        // Variable label: resolve a nearby `let <var> = format!(…)`.
        resolve_variable_label(file, idx, &label_raw)
    };
    Some(CallSite {
        file: file.rel.clone(),
        line: idx + 1,
        krate: String::new(),
        seed,
        skeleton,
        vars,
        loop_vars: Vec::new(),
        allowed: false,
    })
}

/// Strip whitespace and receiver prefixes so `self.seed` and `seed`
/// compare equal — they usually denote the same job seed.
fn normalize_seed(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .trim_start_matches('&')
        .replace("self.", "")
        .replace("ctx.", "")
}

/// The first string literal in `raw` at or after char offset `from`:
/// `(content, char_offset_past_closing_quote)`.
fn read_string_lit(raw: &str, from: usize) -> Option<(String, usize)> {
    let chars: Vec<char> = raw.chars().collect();
    let open = (from..chars.len()).find(|&i| chars[i] == '"')?;
    let mut out = String::new();
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(chars[i]);
                if let Some(&n) = chars.get(i + 1) {
                    out.push(n);
                }
                i += 2;
            }
            '"' => return Some((out, i + 1)),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    None
}

/// Parse a `format!("…{hole}…", args)` region: skeleton with holes
/// normalized to `{}`, plus the identifier set from holes and args.
fn parse_format(raw: &str, _code: &str, fpos: usize) -> (Option<String>, BTreeSet<String>) {
    let Some((lit, lit_end)) = read_string_lit(raw, fpos) else {
        return (None, BTreeSet::new());
    };
    let mut skeleton = String::new();
    let mut vars = BTreeSet::new();
    let chars: Vec<char> = lit.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => {
                skeleton.push('{');
                i += 2;
            }
            '{' => {
                let end = (i + 1..chars.len()).find(|&j| chars[j] == '}').unwrap_or(chars.len());
                let hole: String = chars[i + 1..end].iter().collect();
                let name = hole.split(':').next().unwrap_or("");
                for v in idents_in(name) {
                    vars.insert(v);
                }
                skeleton.push_str("{}");
                i = end + 1;
            }
            '}' if chars.get(i + 1) == Some(&'}') => {
                skeleton.push('}');
                i += 2;
            }
            c => {
                skeleton.push(c);
                i += 1;
            }
        }
    }
    // Positional/named args after the literal also distinguish streams.
    let args: String = raw.chars().skip(lit_end).collect();
    for v in idents_in(&args) {
        vars.insert(v);
    }
    (Some(skeleton), vars)
}

/// Resolve `&label` at line `idx` by scanning backwards (within the
/// enclosing fn) for `label = format!(…)`. Unresolvable labels return
/// `(None, …)` and are exempt from both checks — a site the rule cannot
/// reason about is not a finding.
fn resolve_variable_label(
    file: &SourceFile,
    idx: usize,
    label_raw: &str,
) -> (Option<String>, BTreeSet<String>) {
    let var = idents_in(label_raw).into_iter().next_back();
    let Some(var) = var else { return (None, BTreeSet::new()) };
    let assign = format!("{var} =");
    for back in (0..idx).rev() {
        let code = &file.code[back];
        if code.contains("fn ") && code.contains('(') {
            break;
        }
        if has_token(code, &var) && code.contains(&assign) {
            if let Some(fpos) = code.find("format!") {
                return parse_format(&file.raw[back], code, fpos);
            }
            break;
        }
    }
    (None, BTreeSet::new())
}
