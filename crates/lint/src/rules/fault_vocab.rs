//! V1 `fault-vocab`: cross-engine fault-vocabulary exhaustiveness.
//!
//! The differential validator only means something when both engines speak
//! the whole fault vocabulary: a `ChaosFault` or `FailureKind` variant that
//! one engine silently ignores shows up as a spurious cross-engine delta —
//! or worse, as false agreement because neither side models it. Rust's
//! `match` exhaustiveness cannot see across crates, so this rule checks a
//! structural invariant instead: every variant of each tracked enum must be
//! *named* (as `Enum::Variant`) in every engine-side file group that lowers
//! or classifies it.
//!
//! A variant that is intentionally absent from a group (e.g. a fault kind
//! one engine cannot express) is annotated at its declaration line with
//! `// alm-lint: allow(fault-vocab) — <why>`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Workspace;

use super::Rule;

/// One tracked enum: where it is declared and the engine-side file groups
/// that must each name every variant.
pub struct EnumCoverage {
    pub enum_name: &'static str,
    /// Workspace-relative path of the declaring file.
    pub decl_file: &'static str,
    /// (group label, files that together must name each variant).
    pub groups: Vec<(&'static str, Vec<&'static str>)>,
}

pub struct FaultVocab {
    pub enums: Vec<EnumCoverage>,
}

impl Default for FaultVocab {
    fn default() -> Self {
        FaultVocab {
            enums: vec![
                EnumCoverage {
                    enum_name: "Fault",
                    decl_file: "crates/types/src/failure.rs",
                    groups: vec![
                        (
                            "sim lowering",
                            vec![
                                "crates/sim/src/spec.rs",
                                "crates/sim/src/engine.rs",
                                "crates/sim/src/experiment.rs",
                            ],
                        ),
                        (
                            "runtime injection",
                            vec![
                                "crates/runtime/src/am.rs",
                                "crates/runtime/src/faults.rs",
                                "crates/runtime/src/cluster.rs",
                            ],
                        ),
                    ],
                },
                EnumCoverage {
                    enum_name: "FailureKind",
                    decl_file: "crates/types/src/failure.rs",
                    groups: vec![
                        (
                            "sim engine",
                            vec![
                                "crates/sim/src/engine.rs",
                                "crates/sim/src/experiment.rs",
                                "crates/sim/src/trace.rs",
                            ],
                        ),
                        (
                            "runtime engine",
                            vec![
                                "crates/runtime/src/am.rs",
                                "crates/runtime/src/maptask.rs",
                                "crates/runtime/src/reducetask.rs",
                                "crates/runtime/src/report.rs",
                            ],
                        ),
                        ("chaos analyzer", vec!["crates/chaos/src/analyze.rs"]),
                    ],
                },
                EnumCoverage {
                    enum_name: "ChaosFault",
                    decl_file: "crates/chaos/src/scenario.rs",
                    groups: vec![("scenario lowering", vec!["crates/chaos/src/scenario.rs"])],
                },
                EnumCoverage {
                    enum_name: "SimFault",
                    decl_file: "crates/sim/src/spec.rs",
                    groups: vec![("sim engine", vec!["crates/sim/src/engine.rs"])],
                },
                // Gray-link directionality is single-sourced: both engines
                // consume the expanded (from, to) keys of
                // `directed_keys`, so a new direction variant must extend
                // that derivation and the randomized sampler — not the
                // engines — or it silently never fires.
                EnumCoverage {
                    enum_name: "LinkDirection",
                    decl_file: "crates/types/src/failure.rs",
                    groups: vec![
                        ("directed-key derivation", vec!["crates/types/src/failure.rs"]),
                        ("fault-space sampling", vec!["crates/chaos/src/space.rs"]),
                    ],
                },
                // A chain mode one engine cannot recover under would make the
                // `mem-amplification-bounded` differential vacuous: both chain
                // engines must branch on every MemMode variant (the durable
                // checkpoint path is where the modes diverge).
                EnumCoverage {
                    enum_name: "MemMode",
                    decl_file: "crates/types/src/config.rs",
                    groups: vec![
                        ("sim chain engine", vec!["crates/mem/src/sim_chain.rs"]),
                        ("runtime chain engine", vec!["crates/mem/src/runtime_chain.rs"]),
                    ],
                },
                // CorruptData lowers per artifact: every corruption target —
                // MOF partitions, ALG records, committed DFS blocks — must be
                // handled by both engines' injection paths.
                EnumCoverage {
                    enum_name: "CorruptTarget",
                    decl_file: "crates/types/src/failure.rs",
                    groups: vec![
                        ("sim corruption handling", vec!["crates/sim/src/engine.rs"]),
                        ("runtime corruption injection", vec!["crates/runtime/src/am.rs"]),
                    ],
                },
            ],
        }
    }
}

impl Rule for FaultVocab {
    fn id(&self) -> &'static str {
        "fault-vocab"
    }

    fn code(&self) -> &'static str {
        "V1"
    }

    fn description(&self) -> &'static str {
        "every fault-enum variant is named by every engine"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for cov in &self.enums {
            let Some(decl) = ws.files.iter().find(|f| f.rel == cov.decl_file) else {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: cov.decl_file.to_string(),
                    line: 1,
                    message: format!("declaring file for enum `{}` not found", cov.enum_name),
                });
                continue;
            };
            let variants = enum_variants(decl, cov.enum_name);
            if variants.is_empty() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: cov.decl_file.to_string(),
                    line: 1,
                    message: format!("enum `{}` not found or has no variants", cov.enum_name),
                });
                continue;
            }
            for (label, files) in &cov.groups {
                let members: Vec<&SourceFile> =
                    ws.files.iter().filter(|f| files.iter().any(|p| f.rel == *p)).collect();
                for (variant, decl_line) in &variants {
                    if decl.allowed(self.id(), *decl_line) {
                        continue;
                    }
                    let token = format!("{}::{}", cov.enum_name, variant);
                    let named = members.iter().any(|f| {
                        f.code.iter().enumerate().any(|(i, l)| !f.is_test[i] && names_variant(l, &token))
                    });
                    if !named {
                        out.push(Diagnostic {
                            code: self.code(),
                            rule: self.id(),
                            file: decl.rel.clone(),
                            line: *decl_line,
                            message: format!(
                                "`{token}` is not named anywhere in the {label} \
                                 ({}); handle it there or annotate the variant with a reason",
                                files.join(", ")
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// `token` (`Enum::Variant`) followed by a non-identifier character, so
/// `FailureKind::SlowNode` does not satisfy `FailureKind::Slow`.
fn names_variant(line: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let at = from + pos;
        let end = at + token.len();
        let after_ok = end >= line.len()
            || !line[end..].chars().next().map(|c| c.is_alphanumeric() || c == '_').unwrap_or(false);
        if after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Variants of `enum_name` in `decl`: (name, 1-based declaration line).
/// Parses lines at brace depth 1 relative to the `enum` opening brace,
/// skipping attributes and doc lines (already stripped to blanks).
fn enum_variants(decl: &SourceFile, enum_name: &str) -> Vec<(String, usize)> {
    let header = format!("enum {enum_name}");
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut in_enum = false;
    for (idx, line) in decl.code.iter().enumerate() {
        if !in_enum {
            let starts = line.find(&header).map(|at| {
                !line[at + header.len()..]
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric() || c == '_')
                    .unwrap_or(false)
            });
            if starts == Some(true) {
                in_enum = true;
                depth = 0;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let t = line.trim();
        if depth == 1 && !t.is_empty() && !t.starts_with('#') {
            let end = t.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(t.len());
            if end > 0 && t.chars().next().is_some_and(char::is_uppercase) {
                out.push((t[..end].to_string(), idx + 1));
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
    }
    out
}
