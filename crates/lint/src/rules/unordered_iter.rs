//! D1 `unordered-iter`: no unordered-collection iteration in the
//! deterministic crates.
//!
//! The bug class is the one PR 1 hit for real: `std::collections::HashMap`
//! and `HashSet` iterate in a per-process-random order, and when that order
//! leaks into FlowId allocation, retry queuing, kill order or snapshot
//! application, two runs of the "deterministic" simulator diverge — which
//! silently invalidates the DES determinism property, the golden campaign
//! gate and the cross-engine differential validator all at once.
//!
//! A site is clean when the iteration order provably cannot escape:
//!
//! * the chain ends in an order-insensitive reduction (`count`, `min`,
//!   `max`, `all`, `any`, `contains`, …);
//! * the statement collects into an ordered container (`BTreeMap`,
//!   `BTreeSet`) or the collected `Vec` is sorted within the next few
//!   lines (the sorted-collect idiom);
//! * the site carries `// alm-lint: allow(unordered-iter) — <reason>`.
//!
//! Test code is skipped: hash order in a test cannot reach engine state.

use crate::diag::Diagnostic;
use crate::source::{ident_ending_at, SourceFile};
use crate::Workspace;

use super::Rule;

/// Iteration methods whose result order is the hash order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Chain suffixes (at or after the iteration call) that fold away ordering
/// before anything observable.
const ORDER_INSENSITIVE: &[&str] = &[
    ".count()",
    ".len()",
    ".is_empty()",
    ".min(",
    ".max(",
    ".min_by",
    ".max_by",
    ".all(",
    ".any(",
    ".contains(",
];

/// Statement markers showing the result lands in an ordered collection.
const ORDERED_COLLECT: &[&str] = &[": BTreeMap", ": BTreeSet", "collect::<BTreeMap", "collect::<BTreeSet"];

pub struct UnorderedIter {
    /// Workspace-relative path prefixes the rule applies to.
    pub scopes: Vec<String>,
}

impl Default for UnorderedIter {
    fn default() -> Self {
        UnorderedIter {
            scopes: ["des", "sim", "core", "chaos", "types", "workloads", "sched"]
                .iter()
                .map(|c| format!("crates/{c}/src/"))
                .collect(),
        }
    }
}

impl Rule for UnorderedIter {
    fn id(&self) -> &'static str {
        "unordered-iter"
    }

    fn code(&self) -> &'static str {
        "D1"
    }

    fn description(&self) -> &'static str {
        "hash-order iteration must not reach deterministic-engine state"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in ws.files.iter().filter(|f| self.scopes.iter().any(|s| f.rel.starts_with(s.as_str()))) {
            let unordered = unordered_names(file);
            if unordered.is_empty() {
                continue;
            }
            for hit in iteration_sites(file, &unordered) {
                let (first, last) = statement_span(file, hit.line_idx);
                if is_exempt(file, &hit, first, last) {
                    continue;
                }
                if file.allowed_in(self.id(), first + 1, (last + 1).max(hit.line_idx + 1)) {
                    continue;
                }
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: hit.line_idx + 1,
                    message: format!(
                        "`{}` is a HashMap/HashSet; `{}` yields hash order — sort the collected \
                         result, use a BTree collection, or annotate with a reason",
                        hit.name, hit.what
                    ),
                });
            }
        }
        out
    }
}

struct Hit {
    line_idx: usize,
    /// Byte offset of the match within the line.
    col: usize,
    name: String,
    what: String,
}

/// Names declared in this file with a `HashMap`/`HashSet` type or
/// constructed via `HashMap::new()` etc.
fn unordered_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.code {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                if let Some(name) = declared_name(&line[..at]) {
                    if !names.iter().any(|n| n == &name) {
                        names.push(name);
                    }
                }
                from = at + ty.len();
            }
        }
    }
    names
}

/// Given the text left of a `HashMap`/`HashSet` token, the declared name:
/// `foo: HashMap<…>` (field/param/binding type) or `let [mut] foo = HashMap::new()`.
fn declared_name(prefix: &str) -> Option<String> {
    // Strip type-position noise between the name and the token, including
    // paths like `std::collections::HashMap`.
    let trimmed = prefix.trim_end().trim_end_matches("std::collections::").trim_end();
    let trimmed = trimmed.trim_end_matches(['&', '<', '(', ' ']).trim_end();
    if let Some(head) = trimmed.strip_suffix(':') {
        let head = head.trim_end();
        return ident_ending_at(head, head.len()).map(str::to_owned);
    }
    if let Some(head) = trimmed.strip_suffix('=') {
        let head = head.trim_end();
        let name = ident_ending_at(head, head.len())?;
        // Only `let [mut] name = Hash…` counts as a declaration.
        let before = head[..head.len() - name.len()].trim_end();
        if before.ends_with("let") || before.ends_with("mut") {
            return Some(name.to_owned());
        }
    }
    None
}

/// The receiver identifier of a method call matched at `(line_idx, col)`:
/// the identifier just before the `.` on the same line, or — for a chain
/// broken across lines — the trailing identifier of the previous line.
fn receiver_of(file: &SourceFile, line_idx: usize, col: usize) -> Option<String> {
    let line = &file.code[line_idx];
    let head = line[..col].trim_end();
    if let Some(id) = ident_ending_at(head, head.len()) {
        return Some(id.to_owned());
    }
    if head.is_empty() || head == "." || head.ends_with('.') {
        // `map\n    .iter()` style: look one line up.
        let prev = file.code[..line_idx].iter().rev().find(|l| !l.trim().is_empty())?;
        let prev = prev.trim_end();
        return ident_ending_at(prev, prev.len()).map(str::to_owned);
    }
    None
}

/// All iteration expressions over a known-unordered name.
fn iteration_sites(file: &SourceFile, unordered: &[String]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.code.iter().enumerate() {
        if file.is_test[idx] {
            continue;
        }
        for m in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(m) {
                let at = from + pos;
                if let Some(name) = receiver_of(file, idx, at) {
                    if unordered.contains(&name) {
                        let what = format!("{name}{}", m.trim_end_matches('('));
                        hits.push(Hit { line_idx: idx, col: at, name, what });
                    }
                }
                from = at + m.len();
            }
        }
        // `for pat in &name` / `for pat in &mut name` / `for pat in name`.
        if let Some(for_pos) = find_token(line, "for ") {
            if let Some(in_pos) = line[for_pos..].find(" in ") {
                let at = for_pos + in_pos + 4;
                let expr = line[at..].trim();
                let expr = expr.strip_suffix('{').unwrap_or(expr).trim_end();
                let expr = expr.trim_start_matches("&mut ").trim_start_matches('&');
                // Pure path only (no calls): `self.red_atts`, `flows`.
                if !expr.is_empty() && expr.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') {
                    let name = expr.rsplit('.').next().unwrap_or(expr).to_owned();
                    if unordered.contains(&name) {
                        let what = format!("for … in {name}");
                        hits.push(Hit { line_idx: idx, col: at, name, what });
                    }
                }
            }
        }
    }
    hits
}

/// `needle` at a word boundary (so `for ` does not match inside `before `).
fn find_token(line: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let boundary = at == 0
            || !line[..at].chars().next_back().map(|c| c.is_alphanumeric() || c == '_').unwrap_or(false);
        if boundary {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Expand a hit line to its enclosing statement. Backward: to the line
/// after the previous terminator (`;`, `{`, `}`, or blank). Forward: until
/// all brackets opened since the statement start close again and the line
/// ends with a terminator. Both bounded so unusual formatting can never
/// make the scan run away.
fn statement_span(file: &SourceFile, line_idx: usize) -> (usize, usize) {
    let terminated = |l: &str| {
        let t = l.trim_end();
        t.is_empty() || t.ends_with(';') || t.ends_with('{') || t.ends_with('}')
    };
    let mut first = line_idx;
    for _ in 0..8 {
        if first == 0 || terminated(&file.code[first - 1]) {
            break;
        }
        first -= 1;
    }
    let mut depth: i64 = 0;
    let mut last = line_idx;
    for (off, line) in file.code.iter().enumerate().skip(first).take(40) {
        for c in line.chars() {
            match c {
                '(' | '{' | '[' => depth += 1,
                ')' | '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        let t = line.trim_end();
        if off >= line_idx && depth <= 0 && (t.ends_with(';') || t.ends_with(',') || t.ends_with('}')) {
            last = off;
            break;
        }
        // A bare `for … in x` header never closes its own brace: treat the
        // header line itself as the statement.
        if off == line_idx && t.ends_with('{') && depth > 0 && first == line_idx {
            last = off;
            break;
        }
        last = off;
    }
    (first, last)
}

/// Whether the statement neutralises the hash order before it can escape.
fn is_exempt(file: &SourceFile, hit: &Hit, first: usize, last: usize) -> bool {
    // Text from the iteration call to the end of the statement: the rest of
    // the chain.
    let mut tail = String::from(&file.code[hit.line_idx][hit.col..]);
    for l in file.code.iter().take(last + 1).skip(hit.line_idx + 1) {
        tail.push('\n');
        tail.push_str(l);
    }
    if ORDER_INSENSITIVE.iter().any(|p| tail.contains(p)) {
        return true;
    }
    let stmt: String = file.code[first..=last].join("\n");
    if ORDERED_COLLECT.iter().any(|p| stmt.contains(p)) {
        return true;
    }
    // `let mut v … = ….collect(); v.sort…();` — the sorted-collect idiom.
    if let Some(bound) = let_binding(&stmt) {
        let sorter = format!("{bound}.sort");
        for line in file.code.iter().skip(last + 1).take(4) {
            if line.contains(&sorter) {
                return true;
            }
        }
    }
    false
}

/// The name bound by a statement starting with `let [mut] name`.
fn let_binding(stmt: &str) -> Option<&str> {
    let t = stmt.trim_start().strip_prefix("let ")?.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(t.len());
    if end == 0 {
        None
    } else {
        Some(&t[..end])
    }
}
