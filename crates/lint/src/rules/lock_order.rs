//! L1 `lock-order`: static lock-acquisition-order cycle detection.
//!
//! `crates/runtime` is the only concurrent crate, and its parking_lot
//! mutexes are non-reentrant: acquiring the same lock twice on one thread —
//! or two threads taking two locks in opposite orders — deadlocks the
//! harness instead of failing a test. This rule builds a conservative
//! acquisition-order graph and rejects cycles:
//!
//! * nodes are lock *fields* (`foo: Mutex<…>` / `RwLock<…>`);
//! * an edge `A → B` is recorded when `B.lock()` appears while a guard of
//!   `A` is still live — a `let`-bound guard lives to the end of its brace
//!   scope (or an explicit `drop(guard)`), a temporary to the end of its
//!   statement;
//! * calls are followed *transitively* through the intra-scope call graph
//!   (bounded depth, cycle-safe): holding `A` while calling a function
//!   that — possibly through intermediate calls — locks `B` records
//!   `A → B`, with the call chain carried into the report.
//!
//! Any cycle (including the self-edge `A → A`) is a potential deadlock and
//! is reported at each participating acquisition site.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Diagnostic;
use crate::source::{ident_ending_at, SourceFile};
use crate::Workspace;

use super::Rule;

const ACQUIRES: &[&str] = &[".lock()", ".read()", ".write()"];

pub struct LockOrder {
    /// Path prefixes of the concurrent code to analyse.
    pub scopes: Vec<String>,
}

impl Default for LockOrder {
    fn default() -> Self {
        LockOrder { scopes: vec!["crates/runtime/src/".to_string()] }
    }
}

/// An acquisition-order edge: lock `held` was live when `taken` was locked.
#[derive(Debug, Clone)]
struct Edge {
    held: String,
    taken: String,
    file: String,
    /// 1-based line of the inner acquisition (or call site).
    line: usize,
    /// Call chain from the call site to the acquiring function — empty for
    /// a direct acquisition, `[callee, …, locker]` for a call edge.
    via: Vec<String>,
}

/// Call chains are followed at most this many frames deep. Deep enough for
/// every real path in the workspace; bounded so a pathological token-level
/// call graph cannot blow up the closure.
const MAX_CALL_DEPTH: usize = 8;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn code(&self) -> &'static str {
        "L1"
    }

    fn description(&self) -> &'static str {
        "lock-acquisition order must be acyclic (parking_lot is non-reentrant)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let files: Vec<&SourceFile> =
            ws.files.iter().filter(|f| self.scopes.iter().any(|s| f.rel.starts_with(s.as_str()))).collect();
        let locks = lock_fields(&files);
        if locks.is_empty() {
            return Vec::new();
        }
        let mut edges: Vec<Edge> = Vec::new();
        // fn name -> locks it acquires directly.
        let mut fn_locks: BTreeMap<String, Vec<String>> = BTreeMap::new();
        // fn name -> functions it calls (the intra-scope call graph).
        let mut fn_calls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        // (held, callee, file, line) resolved after all functions are known.
        let mut pending_calls: Vec<(String, String, String, usize)> = Vec::new();
        for file in &files {
            scan_file(file, &locks, &mut edges, &mut fn_locks, &mut fn_calls, &mut pending_calls);
        }
        for (held, callee, file, line) in pending_calls {
            for (taken, via) in transitive_locks(&callee, &fn_locks, &fn_calls) {
                edges.push(Edge { held: held.clone(), taken, file: file.clone(), line, via });
            }
        }
        // Annotated edges are vetted: drop them before cycle detection.
        edges.retain(|e| {
            let f = files.iter().find(|f| f.rel == e.file);
            !f.map(|f| f.allowed(self.id(), e.line)).unwrap_or(false)
        });
        let cyclic = cyclic_edges(&edges);
        let mut out: Vec<Diagnostic> = cyclic
            .into_iter()
            .map(|(e, cycle)| {
                let via = if e.via.len() > 1 {
                    format!(" (reached via {})", e.via.join(" -> "))
                } else {
                    String::new()
                };
                Diagnostic {
                    code: self.code(),
                    rule: self.id(),
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "acquiring `{}`{via} while holding `{}` closes the lock cycle {} — \
                         parking_lot locks are non-reentrant, so this can deadlock",
                        e.taken,
                        e.held,
                        cycle.join(" -> ")
                    ),
                }
            })
            .collect();
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
        out
    }
}

/// All `name: Mutex<…>` / `name: RwLock<…>` field names in scope.
fn lock_fields(files: &[&SourceFile]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for file in files {
        for line in &file.code {
            for ty in ["Mutex<", "RwLock<"] {
                let mut from = 0;
                while let Some(pos) = line[from..].find(ty) {
                    let at = from + pos;
                    let head = line[..at].trim_end();
                    if let Some(head) = head.strip_suffix(':') {
                        let head = head.trim_end();
                        if let Some(name) = ident_ending_at(head, head.len()) {
                            if !out.iter().any(|n| n == name) {
                                out.push(name.to_string());
                            }
                        }
                    }
                    from = at + ty.len();
                }
            }
        }
    }
    out.sort();
    out
}

/// A live guard inside a function body.
struct Guard {
    lock: String,
    /// Brace depth at acquisition; popped when depth drops below it.
    depth: i64,
    /// Variable the guard is bound to (`let g = l.lock()`), for `drop(g)`.
    var: Option<String>,
}

fn scan_file(
    file: &SourceFile,
    locks: &[String],
    edges: &mut Vec<Edge>,
    fn_locks: &mut BTreeMap<String, Vec<String>>,
    fn_calls: &mut BTreeMap<String, Vec<String>>,
    pending_calls: &mut Vec<(String, String, String, usize)>,
) {
    let mut current_fn: Option<String> = None;
    let mut fn_depth: i64 = 0;
    let mut depth: i64 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    for (idx, line) in file.code.iter().enumerate() {
        if file.is_test[idx] {
            // Keep brace accounting alive through test modules.
            depth += brace_delta(line);
            continue;
        }
        if current_fn.is_none() {
            if let Some(name) = fn_header(line) {
                current_fn = Some(name);
                fn_depth = depth;
                guards.clear();
            }
        }
        if let Some(fname) = current_fn.clone() {
            // Acquisitions on this line, left to right.
            let trimmed = line.trim_start();
            let let_bound = trimmed.starts_with("let ");
            for pat in ACQUIRES {
                let mut from = 0;
                while let Some(pos) = line[from..].find(pat) {
                    let at = from + pos;
                    let head = line[..at].trim_end();
                    if let Some(recv) = ident_ending_at(head, head.len()) {
                        if locks.iter().any(|l| l == recv) {
                            for g in &guards {
                                edges.push(Edge {
                                    held: g.lock.clone(),
                                    taken: recv.to_string(),
                                    file: file.rel.clone(),
                                    line: idx + 1,
                                    via: Vec::new(),
                                });
                            }
                            fn_locks.entry(fname.clone()).or_default().push(recv.to_string());
                            let var = if let_bound { let_var(trimmed) } else { None };
                            let persists = let_bound && var.is_some();
                            guards.push(Guard { lock: recv.to_string(), depth, var });
                            if !persists {
                                // Temporary: dies at the end of the
                                // statement. Model as end-of-line when the
                                // line terminates a statement.
                                if line.trim_end().ends_with(';') {
                                    guards.pop();
                                }
                            }
                        }
                    }
                    from = at + pat.len();
                }
            }
            // `drop(guard)` releases exactly the named guard — and only a
            // real `drop` token counts: `undrop(g)` or `pre_drop(g)` is an
            // ordinary call that moves nothing.
            let mut from = 0;
            while let Some(pos) = line[from..].find("drop(") {
                let at = from + pos;
                from = at + 5;
                let boundary = at == 0
                    || !line[..at]
                        .chars()
                        .next_back()
                        .map(|c| c.is_alphanumeric() || c == '_')
                        .unwrap_or(false);
                if !boundary {
                    continue;
                }
                let inner = &line[at + 5..];
                if let Some(close) = inner.find(')') {
                    let name = inner[..close].trim();
                    guards.retain(|g| g.var.as_deref() != Some(name));
                }
            }
            // Record the call graph for this fn; calls made while holding
            // a guard are resolved transitively once every fn is known.
            // Only simple `name(`/`.name(` call tokens are considered.
            for callee in call_tokens(line) {
                let known = fn_calls.entry(fname.clone()).or_default();
                if !known.contains(&callee) {
                    known.push(callee.clone());
                }
                for g in &guards {
                    pending_calls.push((g.lock.clone(), callee.clone(), file.rel.clone(), idx + 1));
                }
            }
            let d = brace_delta(line);
            depth += d;
            guards.retain(|g| g.depth <= depth);
            if depth <= fn_depth && d != 0 {
                current_fn = None;
                guards.clear();
            }
        } else {
            depth += brace_delta(line);
        }
    }
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// `fn name(` on this line (decl, not a call: preceded by `fn `).
fn fn_header(line: &str) -> Option<String> {
    let pos = line.find("fn ")?;
    let boundary = pos == 0
        || !line[..pos].chars().next_back().map(|c| c.is_alphanumeric() || c == '_').unwrap_or(false);
    if !boundary {
        return None;
    }
    let rest = line[pos + 3..].trim_start();
    let end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_'))?;
    if end == 0 || !rest[end..].starts_with(['(', '<']) {
        return None;
    }
    Some(rest[..end].to_string())
}

/// Variable bound by `let [mut] name = …` at the start of a trimmed line.
fn let_var(trimmed: &str) -> Option<String> {
    let t = trimmed.strip_prefix("let ")?.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(t.len());
    if end == 0 || t[..end].starts_with('_') {
        return None;
    }
    Some(t[..end].to_string())
}

/// Plain call tokens on a line: `foo(` or `.foo(` where `foo` is not a
/// known keyword-like construct.
fn call_tokens(line: &str) -> Vec<String> {
    const SKIP: &[&str] = &[
        "if", "while", "for", "match", "return", "lock", "read", "write", "drop", "Some", "Ok", "Err",
        "unwrap", "expect", "clone", "new", "len", "push", "insert", "remove", "get", "contains", "iter",
        "format", "vec", "assert",
    ];
    let mut out = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    for (i, c) in chars.iter().enumerate() {
        if *c != '(' {
            continue;
        }
        if let Some(id) = ident_ending_at(line, i) {
            if !SKIP.contains(&id) && id.chars().next().map(char::is_lowercase).unwrap_or(false) {
                out.push(id.to_string());
            }
        }
    }
    out.dedup();
    out
}

/// Locks reachable from `callee` through the call graph within
/// [`MAX_CALL_DEPTH`] frames, each with the (shortest, BFS-order) call
/// chain that reaches it. Cycle-safe: every function is visited once.
fn transitive_locks(
    callee: &str,
    fn_locks: &BTreeMap<String, Vec<String>>,
    fn_calls: &BTreeMap<String, Vec<String>>,
) -> Vec<(String, Vec<String>)> {
    let mut out: Vec<(String, Vec<String>)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::from([callee.to_string()]);
    let mut queue: VecDeque<(String, Vec<String>, usize)> =
        VecDeque::from([(callee.to_string(), vec![callee.to_string()], 0)]);
    while let Some((f, chain, d)) = queue.pop_front() {
        for l in fn_locks.get(&f).into_iter().flatten() {
            if !out.iter().any(|(taken, _)| taken == l) {
                out.push((l.clone(), chain.clone()));
            }
        }
        if d + 1 >= MAX_CALL_DEPTH {
            continue;
        }
        for next in fn_calls.get(&f).into_iter().flatten() {
            if seen.insert(next.clone()) {
                let mut c = chain.clone();
                c.push(next.clone());
                queue.push_back((next.clone(), c, d + 1));
            }
        }
    }
    out
}

/// Edges that participate in at least one cycle, with a representative
/// cycle path for the message.
fn cyclic_edges(edges: &[Edge]) -> Vec<(Edge, Vec<String>)> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().push(e.taken.as_str());
    }
    let mut out = Vec::new();
    for e in edges {
        // A cycle through this edge exists iff `taken` can reach `held`.
        if let Some(path) = reach(&adj, &e.taken, &e.held) {
            let mut cycle: Vec<String> = vec![e.held.clone()];
            cycle.extend(path.into_iter().map(str::to_owned));
            out.push((e.clone(), cycle));
        }
    }
    out
}

/// DFS path from `from` to `to` (inclusive of both), if any.
fn reach<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>, from: &'a str, to: &str) -> Option<Vec<&'a str>> {
    let mut stack = vec![vec![from]];
    let mut seen = vec![from];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("path never empty");
        if last == to {
            return Some(path);
        }
        for next in adj.get(last).into_iter().flatten() {
            if !seen.contains(next) {
                seen.push(next);
                let mut p = path.clone();
                p.push(next);
                stack.push(p);
            }
        }
    }
    None
}
