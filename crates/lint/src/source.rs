//! Line-level model of one Rust source file.
//!
//! The linter works on *stripped* source: comments and string/char literals
//! are blanked out (replaced by spaces, so columns and line numbers are
//! preserved) before any rule looks at the text. That keeps token scans from
//! tripping over `"Instant::now"` inside a message string or an example in a
//! doc comment, without pulling in a full parser — the workspace bans new
//! external dependencies, so there is no `syn` here by design.
//!
//! The model also carries the two pieces of per-line context every rule
//! needs: whether a line is test code (inside a `#[cfg(test)]` module, or in
//! a file under a `tests/` directory), and the `// alm-lint: allow(<rule>) —
//! <reason>` escape-hatch annotations with the line each one covers.

/// One `alm-lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the annotation comment itself.
    pub at_line: usize,
    /// 1-based line the annotation covers: the same line for a trailing
    /// comment, the next code line for a whole-line comment.
    pub applies_to: usize,
    /// Rule id inside `allow(...)`, e.g. `unordered-iter`.
    pub rule: String,
    /// Free-text justification after the closing parenthesis. Mandatory:
    /// an empty reason is itself reported by the linter.
    pub reason: String,
}

/// A parsed source file: raw lines, stripped lines, per-line test flags and
/// allow annotations.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Original text, split into lines.
    pub raw: Vec<String>,
    /// Comment- and literal-stripped text, same line count as `raw`.
    pub code: Vec<String>,
    /// `is_test[i]` is true when line `i+1` is test-only code.
    pub is_test: Vec<bool>,
    /// Escape-hatch annotations found in the file.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    pub fn parse(rel: impl Into<String>, text: &str) -> SourceFile {
        let rel = rel.into();
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let (code, comment_starts) = strip_lines(&raw);
        let in_tests_dir = rel.split('/').any(|c| c == "tests" || c == "benches" || c == "examples");
        let is_test = if in_tests_dir { vec![true; raw.len()] } else { test_mask(&code) };
        let allows = collect_allows(&raw, &code, &comment_starts);
        SourceFile { rel, raw, code, is_test, allows }
    }

    /// Whether `rule` is allowed at 1-based `line` by an annotation.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.applies_to == line && !a.reason.is_empty())
    }

    /// Whether `rule` is allowed anywhere in the 1-based inclusive range.
    pub fn allowed_in(&self, rule: &str, first: usize, last: usize) -> bool {
        (first..=last).any(|l| self.allowed(rule, l))
    }

    /// Stripped line by 1-based number.
    pub fn line(&self, line: usize) -> &str {
        &self.code[line - 1]
    }
}

// ---------------- literal/comment stripping ----------------

#[derive(Clone, Copy, PartialEq)]
enum St {
    Code,
    Block(u32),
    Str,
    RawStr(usize),
}

/// Blank out comments and string/char literals, preserving line shape.
/// Also reports, per line, the char offset where a `//` line comment
/// started (if any) — the annotation parser needs to know the difference
/// between a real comment and the same text inside a string literal.
fn strip_lines(raw: &[String]) -> (Vec<String>, Vec<Option<usize>>) {
    let mut st = St::Code;
    let mut out = Vec::with_capacity(raw.len());
    let mut starts = Vec::with_capacity(raw.len());
    for line in raw {
        let mut comment_at = None;
        out.push(strip_line(line, &mut st, &mut comment_at));
        starts.push(comment_at);
    }
    (out, starts)
}

fn strip_line(line: &str, st: &mut St, comment_at: &mut Option<usize>) -> String {
    let b: Vec<char> = line.chars().collect();
    let mut o: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match *st {
            St::Block(depth) => {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    *st = St::Block(depth + 1);
                    o.extend([' ', ' ']);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    *st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    o.extend([' ', ' ']);
                    i += 2;
                } else {
                    o.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if b[i] == '\\' {
                    o.extend([' ', ' ']);
                    i += 2;
                } else if b[i] == '"' {
                    *st = St::Code;
                    o.push(' ');
                    i += 1;
                } else {
                    o.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if b[i] == '"' && b[i + 1..].iter().take_while(|c| **c == '#').count() >= hashes {
                    o.resize(o.len() + hashes + 1, ' ');
                    i += 1 + hashes;
                    *st = St::Code;
                } else {
                    o.push(' ');
                    i += 1;
                }
            }
            St::Code => {
                let c = b[i];
                let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    // Line comment: blank the rest of the line.
                    *comment_at = Some(i);
                    while i < b.len() {
                        o.push(' ');
                        i += 1;
                    }
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    *st = St::Block(1);
                    o.extend([' ', ' ']);
                    i += 2;
                } else if c == '"' {
                    *st = St::Str;
                    o.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string prefix: r", r#", br", b".
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hashes = b[j..].iter().take_while(|ch| **ch == '#').count();
                    let is_raw = (c == 'r' || j > i + 1) && b.get(j + hashes) == Some(&'"');
                    if is_raw {
                        o.resize(o.len() + (j + hashes + 1 - i), ' ');
                        i = j + hashes + 1;
                        *st = St::RawStr(hashes);
                    } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                        o.extend([' ', ' ']);
                        i += 2;
                        *st = St::Str;
                    } else {
                        o.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                    let next = b.get(i + 1).copied();
                    let after = b.get(i + 2).copied();
                    let is_lifetime =
                        matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                    if is_lifetime {
                        o.push(c);
                        i += 1;
                    } else {
                        // Char literal: blank until the closing quote.
                        o.push(' ');
                        i += 1;
                        while i < b.len() {
                            if b[i] == '\\' {
                                o.extend([' ', ' ']);
                                i += 2;
                            } else if b[i] == '\'' {
                                o.push(' ');
                                i += 1;
                                break;
                            } else {
                                o.push(' ');
                                i += 1;
                            }
                        }
                    }
                } else {
                    o.push(c);
                    i += 1;
                }
            }
        }
    }
    // An unterminated line comment never spills over; strings and block
    // comments carry their state into the next line.
    o.into_iter().collect()
}

// ---------------- test-region detection ----------------

/// Mark lines inside `#[cfg(test)] mod … { … }` regions.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    // (close_depth) stack of open test regions.
    let mut regions: Vec<i64> = Vec::new();
    let mut pending_cfg_test: Option<usize> = None;
    for (idx, line) in code.iter().enumerate() {
        if let Some(start) = pending_cfg_test {
            // The cfg(test) attribute must be followed by a mod within a
            // few lines (other attributes/doc lines may intervene).
            if line.contains("mod ") && line.contains('{') {
                regions.push(depth);
                pending_cfg_test = None;
            } else if idx > start + 3 || line.contains('}') {
                pending_cfg_test = None;
            }
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = Some(idx);
        }
        if !regions.is_empty() {
            mask[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if regions.last().is_some_and(|open| depth <= *open) {
                        regions.pop();
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

// ---------------- allow annotations ----------------

const MARKER: &str = "alm-lint: allow(";

fn collect_allows(raw: &[String], code: &[String], comment_starts: &[Option<usize>]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let Some(pos) = line.find(MARKER) else { continue };
        // Only a real `//` line comment is a directive: the same text inside
        // a string literal or a `///`/`//!` doc comment (documentation that
        // *mentions* the syntax) must not register as an annotation.
        let Some(start) = comment_starts[idx] else { continue };
        let byte_start = line.char_indices().nth(start).map(|(b, _)| b).unwrap_or(start);
        if pos < byte_start || line[byte_start..].starts_with("///") || line[byte_start..].starts_with("//!")
        {
            continue;
        }
        let rest = &line[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\u{2014}', '\u{2013}', '-', ':', '\t'])
            .trim()
            .to_string();
        // Trailing comment covers its own line; a whole-line comment covers
        // the next line that has any code on it.
        let own_code = code[idx].trim();
        let applies_to = if !own_code.is_empty() {
            idx + 1
        } else {
            let next = (idx + 1..code.len()).find(|&j| !code[j].trim().is_empty());
            next.map(|j| j + 1).unwrap_or(idx + 1)
        };
        out.push(Allow { at_line: idx + 1, applies_to, rule, reason });
    }
    out
}

// ---------------- token helpers shared by rules ----------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `hay` delimited by non-identifier characters
/// on both sides — a word-boundary substring match.
pub fn has_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = !hay[..at].chars().next_back().map(is_ident_char).unwrap_or(false);
        let end = at + needle.len();
        let after_ok = !hay[end..].chars().next().map(is_ident_char).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// The identifier ending exactly at byte offset `end` of `s` (exclusive),
/// e.g. `ident_ending_at("self.flows", 10) == Some("flows")`.
pub fn ident_ending_at(s: &str, end: usize) -> Option<&str> {
    let head = &s[..end];
    let start = head.rfind(|c: char| !is_ident_char(c)).map(|p| p + 1).unwrap_or(0);
    let id = &head[start..];
    let first = id.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(id)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_strings() {
        let f = SourceFile::parse("x/src/a.rs", "let a = \"Instant::now\"; // Instant::now\nlet b = 1;");
        assert!(!f.code[0].contains("Instant"));
        assert!(f.code[1].contains("let b"));
    }

    #[test]
    fn strips_block_comments_across_lines() {
        let f = SourceFile::parse("x/src/a.rs", "a /* one\ntwo HashMap\nthree */ b");
        assert!(!f.code[1].contains("HashMap"));
        assert!(f.code[2].trim().ends_with('b'));
    }

    #[test]
    fn raw_strings_and_chars_stripped_lifetimes_kept() {
        let f = SourceFile::parse(
            "x/src/a.rs",
            "fn f<'a>(x: &'a str) { let c = '\"'; let s = r#\"thread_rng\"#; }",
        );
        assert!(f.code[0].contains("'a str"), "lifetime survives: {}", f.code[0]);
        assert!(!f.code[0].contains("thread_rng"));
        // The stripped char literal must not open a string state.
        assert!(f.code[0].contains('}'));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::parse("x/src/a.rs", src);
        assert!(!f.is_test[0]);
        assert!(f.is_test[3]);
        assert!(!f.is_test[5]);
    }

    #[test]
    fn tests_dir_is_all_test() {
        let f = SourceFile::parse("crates/x/tests/t.rs", "fn a() {}");
        assert!(f.is_test[0]);
    }

    #[test]
    fn allow_parsing_trailing_and_standalone() {
        let src = "let x = m.iter(); // alm-lint: allow(unordered-iter) — order folded by max\n\
                   // alm-lint: allow(wall-clock) — harness timing only\n\
                   let t = now();\n\
                   // alm-lint: allow(rng-stream)\n\
                   let r = f();\n";
        let f = SourceFile::parse("x/src/a.rs", src);
        assert!(f.allowed("unordered-iter", 1));
        assert!(f.allowed("wall-clock", 3));
        assert!(!f.allowed("rng-stream", 5), "missing reason never suppresses");
        assert_eq!(f.allows.len(), 3);
        assert!(f.allows[2].reason.is_empty());
    }

    #[test]
    fn token_helpers() {
        assert!(has_token("a Instant b", "Instant"));
        assert!(!has_token("MyInstant", "Instant"));
        assert_eq!(ident_ending_at("self.att.flows.iter", 14), Some("flows"));
        assert_eq!(ident_ending_at("(&flows", 7), Some("flows"));
    }
}
