//! alm-lint: workspace static-analysis pass machine-checking the invariants
//! the test suite can only sample.
//!
//! The repo's correctness story rests on properties that are global and
//! structural rather than local and behavioral: hash-order never reaching
//! deterministic state (D1), virtual time staying virtual (D2), every RNG
//! draw being a named seeded stream (D3), both engines speaking the whole
//! fault vocabulary (V1), the config surface being validated and pinned
//! (C1), lock acquisition staying acyclic through the transitive call
//! graph (L1), engine-report counters keeping cross-engine parity (P1),
//! canonical_json emissions staying golden-gate safe (G1), and named RNG
//! streams actually being distinct (R1). Each is enforced here as a
//! line/token-level scan over stripped source — no `syn`, because the
//! workspace bans new external dependencies.
//!
//! Escape hatch: `// alm-lint: allow(<rule-id>) — <reason>`. The reason is
//! mandatory; the linter reports annotations with unknown rule ids or
//! missing reasons so the allowlist itself cannot rot.

#![forbid(unsafe_code)]

pub mod diag;
pub mod rules;
pub mod source;
pub mod walker;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{render, render_json, Diagnostic};
use rules::Rule;
use source::SourceFile;

/// The loaded file set all rules run against. `aux` holds non-source
/// inputs rules may need to diff against (today: the committed golden
/// campaign baselines, which the walker deliberately excludes from the
/// `.rs` scan), keyed by workspace-relative path.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub aux: std::collections::BTreeMap<String, String>,
}

impl Workspace {
    /// Load every in-scope `.rs` file under `root` via the shared walker,
    /// plus the golden baselines as auxiliary texts.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for rel in walker::rust_sources(root)? {
            let text = fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::parse(rel, &text));
        }
        let mut aux = std::collections::BTreeMap::new();
        for rel in walker::golden_baselines(root) {
            aux.insert(rel.clone(), fs::read_to_string(root.join(&rel))?);
        }
        Ok(Workspace { root: root.to_path_buf(), files, aux })
    }

    /// Build a workspace from in-memory `(rel_path, text)` pairs — the
    /// fixture-test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Self::from_sources_with_aux(sources, &[])
    }

    /// Fixture entry point that also supplies auxiliary (non-source) texts
    /// such as a golden baseline JSON.
    pub fn from_sources_with_aux(sources: &[(&str, &str)], aux: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: sources.iter().map(|(rel, text)| SourceFile::parse(*rel, text)).collect(),
            aux: aux.iter().map(|(rel, text)| (rel.to_string(), text.to_string())).collect(),
        }
    }
}

/// A configured set of rules plus the annotation-hygiene pass.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter { rules: rules::default_rules() }
    }
}

impl Linter {
    pub fn new() -> Linter {
        Linter::default()
    }

    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Linter {
        Linter { rules }
    }

    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Run every rule plus annotation hygiene; diagnostics come back sorted
    /// by (file, line, code) so output is stable across runs.
    pub fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = self.check_annotations(ws);
        for rule in &self.rules {
            out.extend(rule.check(ws));
        }
        out.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
        out
    }

    /// The allowlist must not rot: unknown rule ids and empty reasons are
    /// themselves findings.
    fn check_annotations(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            for a in &file.allows {
                if !self.rules.iter().any(|r| r.id() == a.rule) {
                    out.push(Diagnostic {
                        code: "A0",
                        rule: "allow-syntax",
                        file: file.rel.clone(),
                        line: a.at_line,
                        message: format!(
                            "annotation names unknown rule `{}` — it suppresses nothing",
                            a.rule
                        ),
                    });
                } else if a.reason.is_empty() {
                    out.push(Diagnostic {
                        code: "A0",
                        rule: "allow-syntax",
                        file: file.rel.clone(),
                        line: a.at_line,
                        message: format!(
                            "allow({}) has no reason — a justification is mandatory \
                             and the annotation suppresses nothing without one",
                            a.rule
                        ),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_hygiene_reports_unknown_rule_and_missing_reason() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/a.rs",
            "// alm-lint: allow(no-such-rule) — because\nfn a() {}\n\
             // alm-lint: allow(wall-clock)\nfn b() {}\n",
        )]);
        let diags = Linter::new().run(&ws);
        let a0: Vec<_> = diags.iter().filter(|d| d.code == "A0").collect();
        assert_eq!(a0.len(), 2, "{diags:?}");
        assert!(a0[0].message.contains("no-such-rule"));
        assert!(a0[1].message.contains("no reason"));
    }

    #[test]
    fn clean_source_has_no_diagnostics() {
        // V1/C1 intentionally report their anchor files as missing on a
        // synthetic workspace (so a rename cannot silently disable them);
        // run the path-independent rules here.
        let ws = Workspace::from_sources(&[(
            "crates/des/src/a.rs",
            "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n",
        )]);
        let linter = Linter::with_rules(vec![
            Box::new(rules::UnorderedIter::default()),
            Box::new(rules::WallClock::default()),
            Box::new(rules::Randomness),
            Box::new(rules::LockOrder::default()),
        ]);
        assert!(linter.run(&ws).is_empty());
    }
}
