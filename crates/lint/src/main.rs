//! CLI driver: `alm-lint [--check] [--json] [--root <dir>] [--rule <id>]…`
//!
//! `--check` is the CI mode: exit 1 when any diagnostic is produced.
//! Without it the tool reports and exits 0, for local exploration.
//! `--json` swaps the human table for a machine-readable report on stdout
//! (stable key order, byte-stable across runs) — the CI artifact format.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use alm_lint::{render, render_json, Linter, Workspace};

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--list-rules" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(id) => only.push(id),
                None => return usage("--rule needs a rule id"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let linter = if only.is_empty() {
        Linter::new()
    } else {
        let mut rules = alm_lint::rules::default_rules();
        rules.retain(|r| only.iter().any(|id| id == r.id() || id == r.code()));
        if rules.is_empty() {
            return usage(&format!("no rule matches {only:?}"));
        }
        Linter::with_rules(rules)
    };

    if list {
        for r in linter.rules() {
            println!("{:<3} {:<16} {}", r.code(), r.id(), r.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("alm-lint: cannot load workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let diags = linter.run(&ws);
    if json {
        // The JSON report goes to stdout (the artifact); the summary goes
        // to stderr so redirection captures pure JSON.
        print!("{}", render_json(&diags));
        eprintln!("alm-lint: {} diagnostic(s) across {} files", diags.len(), ws.files.len());
        return if check && !diags.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    if diags.is_empty() {
        // A0 annotation hygiene runs alongside the coded rule instances.
        let codes: std::collections::BTreeSet<&str> = linter.rules().iter().map(|r| r.code()).collect();
        println!(
            "alm-lint: {} files clean ({} invariants, {} rule instances)",
            ws.files.len(),
            codes.len() + 1,
            linter.rules().len()
        );
        return ExitCode::SUCCESS;
    }
    println!("{}", render(&diags));
    println!("alm-lint: {} diagnostic(s) across {} files", diags.len(), ws.files.len());
    if check {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]`, so the tool works from any subdirectory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("alm-lint: {err}");
    }
    eprintln!(
        "usage: alm-lint [--check] [--json] [--root <dir>] [--rule <id-or-code>]... [--list-rules]\n\
         \n\
         --check        exit nonzero when any diagnostic is produced (CI mode)\n\
         --json         machine-readable report on stdout (stable key order)\n\
         --root <dir>   workspace root (default: nearest [workspace] Cargo.toml)\n\
         --rule <id>    run only the named rule(s); accepts ids or codes (D1, L1, ...)\n\
         --list-rules   print the rule table and exit"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
