//! Identifiers for jobs, tasks, task attempts, nodes and racks.
//!
//! The identifier scheme mirrors Hadoop's: a job contains tasks, a task is
//! retried as numbered attempts. All ids are small `Copy` types so they can
//! be passed around freely inside both the threaded runtime and the
//! discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::state::TaskKind;

/// Identifier of one MapReduce job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

/// Identifier of one logical task (a map or a reduce) within a job.
///
/// A task identity is stable across re-executions; individual executions are
/// [`AttemptId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId {
    pub job: JobId,
    pub kind: TaskKind,
    /// Index of the task within its kind: map 0..num_maps, reduce 0..num_reduces.
    pub index: u32,
}

impl TaskId {
    pub fn map(job: JobId, index: u32) -> Self {
        TaskId { job, kind: TaskKind::Map, index }
    }

    pub fn reduce(job: JobId, index: u32) -> Self {
        TaskId { job, kind: TaskKind::Reduce, index }
    }

    pub fn is_map(&self) -> bool {
        self.kind == TaskKind::Map
    }

    pub fn is_reduce(&self) -> bool {
        self.kind == TaskKind::Reduce
    }

    /// First attempt of this task.
    pub fn attempt(self, number: u32) -> AttemptId {
        AttemptId { task: self, number }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            TaskKind::Map => 'm',
            TaskKind::Reduce => 'r',
        };
        write!(f, "task_{:04}_{}_{:06}", self.job.0, k, self.index)
    }
}

/// Identifier of one execution attempt of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttemptId {
    pub task: TaskId,
    /// Zero-based attempt number; re-executions and speculative copies get
    /// fresh numbers.
    pub number: u32,
}

impl AttemptId {
    /// The next attempt of the same task.
    pub fn next(self) -> AttemptId {
        AttemptId { task: self.task, number: self.number + 1 }
    }
}

impl fmt::Display for AttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attempt_{}_{}", self.task, self.number)
    }
}

/// Identifier of a compute node (a NodeManager host in YARN terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}

/// Identifier of a rack; used by the DFS placement policy and by the
/// rack-level log replication experiments (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

// Maps keyed by id types serialise with the numeric id as the JSON object
// key, the same shape real serde_json gives integer-keyed maps.
macro_rules! impl_json_key_id {
    ($($t:ident),+) => {$(
        impl serde::JsonKey for $t {
            fn to_key(&self) -> String {
                self.0.to_string()
            }

            fn from_key(s: &str) -> Result<$t, serde::DeError> {
                s.parse().map($t).map_err(|_| {
                    serde::DeError::new(format!(concat!("invalid ", stringify!($t), " key: {:?}"), s))
                })
            }
        }
    )+};
}

impl_json_key_id!(JobId, NodeId, RackId);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{:02}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_hadoop_like() {
        let job = JobId(7);
        let m = TaskId::map(job, 42);
        let r = TaskId::reduce(job, 3);
        assert_eq!(job.to_string(), "job_0007");
        assert_eq!(m.to_string(), "task_0007_m_000042");
        assert_eq!(r.to_string(), "task_0007_r_000003");
        assert_eq!(m.attempt(0).to_string(), "attempt_task_0007_m_000042_0");
    }

    #[test]
    fn attempt_next_increments() {
        let a = TaskId::reduce(JobId(1), 0).attempt(0);
        assert_eq!(a.next().number, 1);
        assert_eq!(a.next().task, a.task);
    }

    #[test]
    fn kinds_are_queryable() {
        assert!(TaskId::map(JobId(0), 0).is_map());
        assert!(!TaskId::map(JobId(0), 0).is_reduce());
        assert!(TaskId::reduce(JobId(0), 0).is_reduce());
    }

    #[test]
    fn ids_order_by_job_then_kind_then_index() {
        let a = TaskId::map(JobId(1), 5);
        let b = TaskId::map(JobId(2), 0);
        assert!(a < b);
        // Within a job maps sort before reduces (enum order).
        let m = TaskId::map(JobId(1), 9);
        let r = TaskId::reduce(JobId(1), 0);
        assert!(m < r);
    }

    #[test]
    fn serde_round_trip() {
        let a = TaskId::reduce(JobId(3), 14).attempt(2);
        let json = serde_json::to_string(&a).unwrap();
        let back: AttemptId = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
