//! Task and job state machines.
//!
//! The transitions encoded here are the ones the paper's failure analysis
//! depends on: a task attempt can fail (transient fault), be killed
//! (preempted by the scheduler, e.g. after repeated fetch failures — the
//! trigger of spatial failure amplification), or succeed. A *task* succeeds
//! when any attempt succeeds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Map or reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskKind {
    Map,
    Reduce,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Map => write!(f, "map"),
            TaskKind::Reduce => write!(f, "reduce"),
        }
    }
}

/// Lifecycle of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Created, not yet given a container.
    New,
    /// Container granted, waiting to start.
    Scheduled,
    /// Executing.
    Running,
    /// Finished successfully; output committed.
    Succeeded,
    /// Died with an error (OOM, fetch-failure limit, node crash, timeout).
    Failed,
    /// Preempted/killed by the scheduler; not an error of the attempt itself.
    Killed,
}

impl TaskState {
    /// Whether this state is terminal (no further transitions).
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Succeeded | TaskState::Failed | TaskState::Killed)
    }

    /// Whether a transition `self -> next` is legal.
    ///
    /// Legal paths: `New -> Scheduled -> Running -> {Succeeded, Failed,
    /// Killed}`; in addition `Scheduled -> {Failed, Killed}` (container lost
    /// before launch) and `New -> Killed` (job aborted before scheduling).
    pub fn can_transition_to(&self, next: TaskState) -> bool {
        use TaskState::*;
        matches!(
            (self, next),
            (New, Scheduled)
                | (New, Killed)
                | (Scheduled, Running)
                | (Scheduled, Failed)
                | (Scheduled, Killed)
                | (Running, Succeeded)
                | (Running, Failed)
                | (Running, Killed)
        )
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    Setup,
    /// Map phase running (reduces may already be launched and shuffling —
    /// the paper's "overlapping the reduce phase with the map phase").
    Running,
    Succeeded,
    Failed,
}

/// The internal phase of a running ReduceTask.
///
/// The paper's analytics logging applies stage-specific strategies (Fig. 6):
/// the shuffle stage logs MOF ids plus intermediate file paths, the merge
/// stage only intermediate file paths, the reduce stage the MPQ structure
/// (file paths + offsets) with the record stored on HDFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReducePhase {
    /// Fetching MOF partitions from map-side nodes; background merging.
    Shuffle,
    /// All segments local; merging down to `io.sort.factor` inputs.
    Merge,
    /// Traversing the MPQ and applying the user reduce function.
    Reduce,
}

impl fmt::Display for ReducePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReducePhase::Shuffle => write!(f, "shuffle"),
            ReducePhase::Merge => write!(f, "merge"),
            ReducePhase::Reduce => write!(f, "reduce"),
        }
    }
}

impl ReducePhase {
    /// Phases in execution order.
    pub const ALL: [ReducePhase; 3] = [ReducePhase::Shuffle, ReducePhase::Merge, ReducePhase::Reduce];

    /// The phase following this one, if any.
    pub fn next(&self) -> Option<ReducePhase> {
        match self {
            ReducePhase::Shuffle => Some(ReducePhase::Merge),
            ReducePhase::Merge => Some(ReducePhase::Reduce),
            ReducePhase::Reduce => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_happy_path() {
        use TaskState::*;
        assert!(New.can_transition_to(Scheduled));
        assert!(Scheduled.can_transition_to(Running));
        assert!(Running.can_transition_to(Succeeded));
    }

    #[test]
    fn terminal_states_have_no_exits() {
        use TaskState::*;
        for from in [Succeeded, Failed, Killed] {
            assert!(from.is_terminal());
            for to in [New, Scheduled, Running, Succeeded, Failed, Killed] {
                assert!(!from.can_transition_to(to), "{from:?} -> {to:?} must be illegal");
            }
        }
    }

    #[test]
    fn cannot_skip_scheduling() {
        assert!(!TaskState::New.can_transition_to(TaskState::Running));
        assert!(!TaskState::New.can_transition_to(TaskState::Succeeded));
    }

    #[test]
    fn scheduled_can_fail_before_launch() {
        assert!(TaskState::Scheduled.can_transition_to(TaskState::Failed));
        assert!(TaskState::Scheduled.can_transition_to(TaskState::Killed));
    }

    #[test]
    fn reduce_phases_progress_in_order() {
        assert_eq!(ReducePhase::Shuffle.next(), Some(ReducePhase::Merge));
        assert_eq!(ReducePhase::Merge.next(), Some(ReducePhase::Reduce));
        assert_eq!(ReducePhase::Reduce.next(), None);
        assert!(ReducePhase::Shuffle < ReducePhase::Reduce);
    }
}
