//! Byte-size and time constants/helpers shared across crates.

/// One kibibyte... in this codebase we follow Hadoop's loose convention and
/// use power-of-two "KB/MB/GB" since block and buffer sizes are specified
/// that way (128 MB blocks, 8 MB buffers).
pub const KB: u64 = 1024;
pub const MB: u64 = 1024 * KB;
pub const GB: u64 = 1024 * MB;

/// Render a byte count human-readably ("1.5 GB", "340 MB", "12 KB").
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GB {
        format!("{:.2} GB", bytes as f64 / GB as f64)
    } else if bytes >= MB {
        format!("{:.1} MB", bytes as f64 / MB as f64)
    } else if bytes >= KB {
        format!("{:.0} KB", bytes as f64 / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Render milliseconds as seconds with one decimal ("129.0 s").
pub fn fmt_ms_as_secs(ms: u64) -> String {
    format!("{:.1} s", ms as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(KB, 1024);
        assert_eq!(MB, 1024 * 1024);
        assert_eq!(GB, 1024 * 1024 * 1024);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4 * KB), "4 KB");
        assert_eq!(fmt_bytes(100 * MB), "100.0 MB");
        assert_eq!(fmt_bytes(3 * GB + GB / 2), "3.50 GB");
        assert_eq!(fmt_ms_as_secs(129_000), "129.0 s");
    }
}
