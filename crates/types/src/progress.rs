//! Task progress as a clamped fraction.
//!
//! The paper's experiments inject failures "when a job reaches a varying
//! percentage of progress" (Fig. 2, 8, 9) — [`Progress`] is the value those
//! triggers compare against, and the value heartbeats report to the AM.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fraction of completed work in `[0, 1]`. Construction clamps, so a
/// `Progress` is always valid by construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Progress(f64);

impl Progress {
    pub const ZERO: Progress = Progress(0.0);
    pub const DONE: Progress = Progress(1.0);

    /// Clamp `v` into `[0, 1]`; NaN becomes 0.
    pub fn new(v: f64) -> Progress {
        if v.is_nan() {
            Progress(0.0)
        } else {
            Progress(v.clamp(0.0, 1.0))
        }
    }

    /// From a completed/total pair; a zero total counts as complete.
    pub fn of(done: u64, total: u64) -> Progress {
        if total == 0 {
            Progress::DONE
        } else {
            Progress::new(done as f64 / total as f64)
        }
    }

    pub fn value(&self) -> f64 {
        self.0
    }

    pub fn is_done(&self) -> bool {
        self.0 >= 1.0
    }

    /// Percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.0 * 100.0
    }

    /// Combine sub-phase progresses with weights into an overall progress.
    /// Weights need not sum to 1; they are normalised. Empty input is DONE.
    pub fn weighted(parts: &[(Progress, f64)]) -> Progress {
        let total_w: f64 = parts.iter().map(|(_, w)| w.max(0.0)).sum();
        if total_w <= 0.0 {
            return Progress::DONE;
        }
        let s: f64 = parts.iter().map(|(p, w)| p.0 * w.max(0.0)).sum();
        Progress::new(s / total_w)
    }
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamping() {
        assert_eq!(Progress::new(-0.5).value(), 0.0);
        assert_eq!(Progress::new(1.5).value(), 1.0);
        assert_eq!(Progress::new(f64::NAN).value(), 0.0);
        assert_eq!(Progress::new(0.42).value(), 0.42);
    }

    #[test]
    fn ratio_constructor() {
        assert_eq!(Progress::of(5, 10).value(), 0.5);
        assert!(Progress::of(0, 0).is_done(), "empty work counts as done");
        assert!(Progress::of(20, 10).is_done());
    }

    #[test]
    fn weighted_combination() {
        // Reduce task: shuffle/merge/reduce weighted 1/3 each in Hadoop.
        let p =
            Progress::weighted(&[(Progress::DONE, 1.0), (Progress::new(0.5), 1.0), (Progress::ZERO, 1.0)]);
        assert!((p.value() - 0.5).abs() < 1e-12);
        assert!(Progress::weighted(&[]).is_done());
    }

    #[test]
    fn display_is_percent() {
        assert_eq!(Progress::new(0.903).to_string(), "90.3%");
    }

    proptest! {
        #[test]
        fn always_in_unit_interval(v in proptest::num::f64::ANY) {
            let p = Progress::new(v);
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }

        #[test]
        fn weighted_bounded_by_min_max(parts in proptest::collection::vec((0.0f64..=1.0, 0.0f64..10.0), 1..8)) {
            let ps: Vec<(Progress, f64)> = parts.iter().map(|&(p, w)| (Progress::new(p), w)).collect();
            let combined = Progress::weighted(&ps);
            prop_assert!((0.0..=1.0).contains(&combined.value()));
            if parts.iter().any(|&(_, w)| w > 0.0) {
                let lo = parts.iter().filter(|&&(_, w)| w > 0.0).map(|&(p, _)| p).fold(f64::INFINITY, f64::min);
                let hi = parts.iter().filter(|&&(_, w)| w > 0.0).map(|&(p, _)| p).fold(0.0f64, f64::max);
                prop_assert!(combined.value() >= lo - 1e-9);
                prop_assert!(combined.value() <= hi + 1e-9);
            }
        }
    }
}
