//! Shared vocabulary for the ALM MapReduce reproduction.
//!
//! This crate holds the types every other crate speaks: task/job/node
//! identifiers, the task and job state machines, the YARN configuration
//! surface (Table I of the paper), failure descriptions (the input of the
//! enhanced recovery scheduling policy, Algorithm 1), and progress values.
//!
//! Nothing in here performs I/O or simulation; it is pure data so that the
//! real threaded runtime (`alm-runtime`) and the discrete-event simulator
//! (`alm-sim`) can share one set of definitions.

#![forbid(unsafe_code)]

pub mod config;
pub mod failure;
pub mod id;
pub mod progress;
pub mod state;
pub mod units;

pub use config::{AlmConfig, ClusterSpec, MemConfig, MemMode, RecoveryMode, ReplicationLevel, YarnConfig};
pub use failure::{
    CorruptTarget, FailureKind, FailureReport, Fault, FaultPlan, FlapSchedule, LinkDegradation,
    LinkDirection, PartitionWindow,
};
pub use id::{AttemptId, JobId, NodeId, RackId, TaskId};
pub use progress::Progress;
pub use state::{JobState, ReducePhase, TaskKind, TaskState};
