//! Failure descriptions.
//!
//! [`FailureReport`] is exactly the input of the paper's Algorithm 1
//! ("Enhanced Failure Recovery Scheduling Policy"): the set of failed
//! ReduceTasks, the set of failed MapTasks *plus* MapTasks whose output
//! files (MOFs) were lost, and the source node of the report with its
//! liveness. Both the baseline scheduler and the SFM policy consume it.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::id::{NodeId, TaskId};

/// Root cause of a task or node failure, mirroring the fault classes the
/// paper injects (§II-B, §V-A) and the cascades it analyses (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Injected out-of-memory exception: a transient single-task fault.
    TaskOom,
    /// The task's host stopped responding (network services stopped /
    /// machine crash). Detected only after the liveness timeout.
    NodeCrash,
    /// A reducer exceeded its fetch-failure budget against lost MOFs and
    /// was preempted by the scheduler — the amplification mechanism.
    FetchFailureLimit,
    /// No progress within the task timeout.
    TaskTimeout,
    /// Node responsive but pathologically slow ("faulty node", §IV-B).
    SlowNode,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::TaskOom => "task-oom",
            FailureKind::NodeCrash => "node-crash",
            FailureKind::FetchFailureLimit => "fetch-failure-limit",
            FailureKind::TaskTimeout => "task-timeout",
            FailureKind::SlowNode => "slow-node",
        };
        f.write_str(s)
    }
}

impl FailureKind {
    /// Whether recovery may re-use the same node (the node is believed
    /// healthy). Algorithm 1 line 9's "N is still alive" check.
    pub fn node_presumed_alive(&self) -> bool {
        matches!(self, FailureKind::TaskOom | FailureKind::TaskTimeout | FailureKind::SlowNode)
    }
}

/// A failure report `R` as consumed by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// The node the report concerns (Algorithm 1's `N`).
    pub source_node: NodeId,
    /// Whether `N` is still alive (heartbeating) at report time.
    pub node_alive: bool,
    /// Why the report was raised.
    pub kind: FailureKind,
    /// Failed ReduceTasks in `R` (`T_reduces`).
    pub failed_reduces: Vec<TaskId>,
    /// Failed MapTasks in `R` *and* maps whose MOFs were lost (`T_maps`).
    pub failed_maps: Vec<TaskId>,
}

impl FailureReport {
    /// A report for a single transient task failure on a live node.
    pub fn task_failure(node: NodeId, kind: FailureKind, task: TaskId) -> Self {
        let mut r = FailureReport {
            source_node: node,
            node_alive: kind.node_presumed_alive(),
            kind,
            failed_reduces: Vec::new(),
            failed_maps: Vec::new(),
        };
        if task.is_reduce() {
            r.failed_reduces.push(task);
        } else {
            r.failed_maps.push(task);
        }
        r
    }

    /// A report for a crashed node: every running task on it fails and
    /// every MOF it hosted is lost.
    pub fn node_crash(
        node: NodeId,
        running_tasks: impl IntoIterator<Item = TaskId>,
        lost_mof_maps: impl IntoIterator<Item = TaskId>,
    ) -> Self {
        let mut failed_reduces = Vec::new();
        let mut failed_maps: Vec<TaskId> = Vec::new();
        for t in running_tasks {
            if t.is_reduce() {
                failed_reduces.push(t);
            } else {
                failed_maps.push(t);
            }
        }
        for m in lost_mof_maps {
            debug_assert!(m.is_map(), "lost MOFs belong to map tasks");
            if !failed_maps.contains(&m) {
                failed_maps.push(m);
            }
        }
        FailureReport {
            source_node: node,
            node_alive: false,
            kind: FailureKind::NodeCrash,
            failed_reduces,
            failed_maps,
        }
    }

    /// Total number of task failures carried by the report.
    pub fn failure_count(&self) -> usize {
        self.failed_reduces.len() + self.failed_maps.len()
    }

    /// Internal consistency: reduces are reduces, maps are maps, no dups.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.failed_reduces.iter().find(|t| !t.is_reduce()) {
            return Err(format!("{t} listed in failed_reduces but is not a reduce"));
        }
        if let Some(t) = self.failed_maps.iter().find(|t| !t.is_map()) {
            return Err(format!("{t} listed in failed_maps but is not a map"));
        }
        let mut seen = std::collections::HashSet::new();
        for t in self.failed_reduces.iter().chain(self.failed_maps.iter()) {
            if !seen.insert(*t) {
                return Err(format!("duplicate task {t} in failure report"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::JobId;

    fn job() -> JobId {
        JobId(1)
    }

    #[test]
    fn liveness_presumption_per_kind() {
        assert!(FailureKind::TaskOom.node_presumed_alive());
        assert!(FailureKind::SlowNode.node_presumed_alive());
        assert!(FailureKind::TaskTimeout.node_presumed_alive());
        assert!(!FailureKind::NodeCrash.node_presumed_alive());
        assert!(!FailureKind::FetchFailureLimit.node_presumed_alive());
    }

    #[test]
    fn task_failure_sorts_into_right_bucket() {
        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::reduce(job(), 0));
        assert_eq!(r.failed_reduces.len(), 1);
        assert!(r.failed_maps.is_empty());
        assert!(r.node_alive);
        r.validate().unwrap();

        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::map(job(), 7));
        assert_eq!(r.failed_maps.len(), 1);
        assert!(r.failed_reduces.is_empty());
    }

    #[test]
    fn node_crash_merges_running_and_lost_mofs() {
        let running = vec![TaskId::map(job(), 1), TaskId::reduce(job(), 2)];
        // Map 1 both runs there and has a (previous attempt) MOF there.
        let lost = vec![TaskId::map(job(), 1), TaskId::map(job(), 5)];
        let r = FailureReport::node_crash(NodeId(9), running, lost);
        assert!(!r.node_alive);
        assert_eq!(r.failed_reduces, vec![TaskId::reduce(job(), 2)]);
        assert_eq!(r.failed_maps.len(), 2, "map 1 deduplicated");
        assert_eq!(r.failure_count(), 3);
        r.validate().unwrap();
    }

    #[test]
    fn validation_catches_misfiled_tasks() {
        let mut r = FailureReport::task_failure(NodeId(0), FailureKind::TaskOom, TaskId::map(job(), 0));
        r.failed_reduces.push(TaskId::map(job(), 1));
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_duplicates() {
        let t = TaskId::reduce(job(), 4);
        let r = FailureReport {
            source_node: NodeId(0),
            node_alive: true,
            kind: FailureKind::TaskOom,
            failed_reduces: vec![t, t],
            failed_maps: vec![],
        };
        assert!(r.validate().is_err());
    }
}
