//! Failure descriptions and the engine-neutral fault-injection vocabulary.
//!
//! [`FailureReport`] is exactly the input of the paper's Algorithm 1
//! ("Enhanced Failure Recovery Scheduling Policy"): the set of failed
//! ReduceTasks, the set of failed MapTasks *plus* MapTasks whose output
//! files (MOFs) were lost, and the source node of the report with its
//! liveness. Both the baseline scheduler and the SFM policy consume it.
//!
//! [`Fault`] and [`FaultPlan`] are the *input* side of the same story: one
//! declarative description of the faults to inject into a run, shared by
//! the threaded runtime (which consumes it directly, on its real-time
//! millisecond clock) and the discrete-event simulator (which lowers it to
//! per-task/per-node triggers in virtual seconds). Scenario tooling such as
//! `alm-chaos` speaks only this vocabulary and stays engine-agnostic.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::id::{NodeId, TaskId};

/// Root cause of a task or node failure, mirroring the fault classes the
/// paper injects (§II-B, §V-A) and the cascades it analyses (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Injected out-of-memory exception: a transient single-task fault.
    TaskOom,
    /// The task's host stopped responding (network services stopped /
    /// machine crash). Detected only after the liveness timeout.
    NodeCrash,
    /// A reducer exceeded its fetch-failure budget against lost MOFs and
    /// was preempted by the scheduler — the amplification mechanism.
    FetchFailureLimit,
    /// No progress within the task timeout.
    TaskTimeout,
    /// Node responsive but pathologically slow ("faulty node", §IV-B).
    SlowNode,
    /// Node alive and heartbeating but unreachable over the data plane —
    /// a severed shuffle/DFS link that will heal. The ambiguous half of
    /// §II-C's amplification story: presuming this dead is the mistake.
    NetworkPartition,
    /// Stored bytes (MOF partition or ALG log record) failed their
    /// checksum on read. The host keeps heartbeating; the data, not the
    /// node, is faulty.
    DataCorruption,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FailureKind {
    /// Every variant, for exhaustiveness tests over report labeling.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::TaskOom,
        FailureKind::NodeCrash,
        FailureKind::FetchFailureLimit,
        FailureKind::TaskTimeout,
        FailureKind::SlowNode,
        FailureKind::NetworkPartition,
        FailureKind::DataCorruption,
    ];

    /// Stable kebab-case label used in reports and rendered tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::TaskOom => "task-oom",
            FailureKind::NodeCrash => "node-crash",
            FailureKind::FetchFailureLimit => "fetch-failure-limit",
            FailureKind::TaskTimeout => "task-timeout",
            FailureKind::SlowNode => "slow-node",
            FailureKind::NetworkPartition => "network-partition",
            FailureKind::DataCorruption => "data-corruption",
        }
    }

    /// Whether recovery may re-use the same node (the node is believed
    /// healthy). Algorithm 1 line 9's "N is still alive" check. Transient
    /// kinds (partition, corruption) leave the node healthy by definition.
    pub fn node_presumed_alive(&self) -> bool {
        matches!(
            self,
            FailureKind::TaskOom
                | FailureKind::TaskTimeout
                | FailureKind::SlowNode
                | FailureKind::NetworkPartition
                | FailureKind::DataCorruption
        )
    }

    /// Transient kinds: the fault clears by itself (a partition heals, a
    /// corrupted read is re-fetched) and must never escalate to node-lost
    /// handling while the node heartbeats.
    pub fn is_transient(&self) -> bool {
        matches!(self, FailureKind::NetworkPartition | FailureKind::DataCorruption)
    }
}

/// A failure report `R` as consumed by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// The node the report concerns (Algorithm 1's `N`).
    pub source_node: NodeId,
    /// Whether `N` is still alive (heartbeating) at report time.
    pub node_alive: bool,
    /// Why the report was raised.
    pub kind: FailureKind,
    /// Failed ReduceTasks in `R` (`T_reduces`).
    pub failed_reduces: Vec<TaskId>,
    /// Failed MapTasks in `R` *and* maps whose MOFs were lost (`T_maps`).
    pub failed_maps: Vec<TaskId>,
}

impl FailureReport {
    /// A report for a single transient task failure on a live node.
    pub fn task_failure(node: NodeId, kind: FailureKind, task: TaskId) -> Self {
        let mut r = FailureReport {
            source_node: node,
            node_alive: kind.node_presumed_alive(),
            kind,
            failed_reduces: Vec::new(),
            failed_maps: Vec::new(),
        };
        if task.is_reduce() {
            r.failed_reduces.push(task);
        } else {
            r.failed_maps.push(task);
        }
        r
    }

    /// A report for a crashed node: every running task on it fails and
    /// every MOF it hosted is lost.
    pub fn node_crash(
        node: NodeId,
        running_tasks: impl IntoIterator<Item = TaskId>,
        lost_mof_maps: impl IntoIterator<Item = TaskId>,
    ) -> Self {
        let mut failed_reduces = Vec::new();
        let mut failed_maps: Vec<TaskId> = Vec::new();
        for t in running_tasks {
            if t.is_reduce() {
                failed_reduces.push(t);
            } else {
                failed_maps.push(t);
            }
        }
        for m in lost_mof_maps {
            debug_assert!(m.is_map(), "lost MOFs belong to map tasks");
            if !failed_maps.contains(&m) {
                failed_maps.push(m);
            }
        }
        FailureReport {
            source_node: node,
            node_alive: false,
            kind: FailureKind::NodeCrash,
            failed_reduces,
            failed_maps,
        }
    }

    /// Total number of task failures carried by the report.
    pub fn failure_count(&self) -> usize {
        self.failed_reduces.len() + self.failed_maps.len()
    }

    /// Internal consistency: reduces are reduces, maps are maps, no dups.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.failed_reduces.iter().find(|t| !t.is_reduce()) {
            return Err(format!("{t} listed in failed_reduces but is not a reduce"));
        }
        if let Some(t) = self.failed_maps.iter().find(|t| !t.is_map()) {
            return Err(format!("{t} listed in failed_maps but is not a map"));
        }
        let mut seen = std::collections::HashSet::new();
        for t in self.failed_reduces.iter().chain(self.failed_maps.iter()) {
            if !seen.insert(*t) {
                return Err(format!("duplicate task {t} in failure report"));
            }
        }
        Ok(())
    }
}

/// What a [`Fault::CorruptData`] injection flips bytes in: the durable
/// artifacts the recovery paths read back — shuffle MOF partitions, ALG
/// analytics-log records, and committed DFS output blocks. All three are
/// CRC32-framed so corruption is *detected* (distinct checksum-mismatch
/// error) and then *tolerated* (re-fetch / truncate-and-resume / replica
/// failover + re-replication) instead of escalating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptTarget {
    /// One partition of map `map_index`'s MOF on the target node.
    MofPartition { map_index: u32, partition: u32 },
    /// The ALG log record with sequence `seq` of reduce `reduce_index`.
    AlgRecord { reduce_index: u32, seq: u64 },
    /// One replica of block `block` of reduce `reduce_index`'s committed
    /// output file on the DFS (the replica hosted on the fault's `node`
    /// when one lives there, the first replica otherwise). A verified read
    /// must fail over to a healthy replica and queue re-replication; only
    /// rotting every replica may surface as a (checksum-failure) error.
    DfsBlock { reduce_index: u32, block: u32 },
}

/// One planned fault, in engine-neutral terms (§V-A's injection
/// methodology: "We inject out-of-memory exceptions to crash a task to
/// emulate the transient task failures and stop the network services on a
/// node for node failures").
///
/// Progress triggers (`at_progress`) are fractions in `[0, 1]` and mean the
/// same thing in both engines. Absolute-time triggers (`at_ms`) are in the
/// consuming engine's native milliseconds: the threaded runtime reads them
/// against its real-time clock, the simulator divides by 1000 into virtual
/// seconds. Cross-engine tooling that needs one wall-clock meaning for both
/// engines must rescale times before lowering (see `alm-chaos`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Inject an OOM into a specific attempt of `task` once it reaches
    /// `at_progress` of its own work.
    KillTask { task: TaskId, attempt_number: u32, at_progress: f64 },
    /// Crash a node at an absolute time since job start.
    CrashNodeAtMs { node: NodeId, at_ms: u64 },
    /// Crash a node once reduce `reduce_index` reaches `at_progress` of its
    /// reduce-phase work (how Figs. 9/10 and Table II place node failures
    /// "at X% of the reduce phase").
    CrashNodeAtReduceProgress { node: NodeId, reduce_index: u32, at_progress: f64 },
    /// Degrade a node's compute speed by `factor` (>= 1; 2.0 = half speed)
    /// from `at_ms` on. The node keeps heartbeating — the paper's
    /// faulty-but-alive "slow node" (§IV-B), which produces stragglers
    /// rather than failure reports.
    SlowNode { node: NodeId, at_ms: u64, factor: f64 },
    /// Sever the data-plane link between nodes `a` and `b` from `from_ms`
    /// until `heal_ms`. Both nodes stay alive and heartbeating but cannot
    /// exchange shuffle or DFS traffic until the partition heals — the
    /// ambiguous transient fault §II-C's amplification cascade starts from.
    PartitionLink { a: NodeId, b: NodeId, from_ms: u64, heal_ms: u64 },
    /// Flip bytes in a durable artifact on `node` at `at_ms`. The host
    /// stays healthy; readers must detect the damage via checksums and
    /// recover (re-fetch the partition / truncate the log) without
    /// re-executing healthy work.
    CorruptData { node: NodeId, target: CorruptTarget, at_ms: u64 },
}

impl Fault {
    /// Whether this fault directly produces task-failure events (used for
    /// the paper's "additional failures" amplification accounting). A slow
    /// node only degrades, it does not fail anything by itself; transient
    /// faults (link partitions, data corruption) are *tolerated* — a
    /// correct stack turns them into zero task failures, so counting them
    /// as injected failures would hide amplification behind a bigger
    /// denominator.
    pub fn produces_failures(&self) -> bool {
        !matches!(self, Fault::SlowNode { .. } | Fault::PartitionLink { .. } | Fault::CorruptData { .. })
    }
}

/// The set of faults to inject into one job run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn kill_task(task: TaskId, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::KillTask { task, attempt_number: 0, at_progress }] }
    }

    pub fn crash_node_at_ms(node: NodeId, at_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtMs { node, at_ms }] }
    }

    pub fn crash_node_at_reduce_progress(node: NodeId, reduce_index: u32, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtReduceProgress { node, reduce_index, at_progress }] }
    }

    pub fn slow_node(node: NodeId, at_ms: u64, factor: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::SlowNode { node, at_ms, factor }] }
    }

    pub fn partition_link(a: NodeId, b: NodeId, from_ms: u64, heal_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::PartitionLink { a, b, from_ms, heal_ms }] }
    }

    pub fn corrupt_data(node: NodeId, target: CorruptTarget, at_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CorruptData { node, target, at_ms }] }
    }

    pub fn and(mut self, other: FaultPlan) -> FaultPlan {
        self.faults.extend(other.faults);
        self
    }

    /// The self-kill progress point for a given attempt, if planned.
    pub fn kill_point(&self, task: TaskId, attempt_number: u32) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::KillTask { task: t, attempt_number: a, at_progress }
                if *t == task && *a == attempt_number =>
            {
                Some(*at_progress)
            }
            _ => None,
        })
    }

    /// Planned slow-node degradations as `(node, at_ms, factor)` triples.
    pub fn slow_nodes(&self) -> impl Iterator<Item = (NodeId, u64, f64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::SlowNode { node, at_ms, factor } => Some((*node, *at_ms, *factor)),
            _ => None,
        })
    }

    /// Planned link partitions as `(a, b, from_ms, heal_ms)` tuples.
    pub fn partitions(&self) -> impl Iterator<Item = (NodeId, NodeId, u64, u64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::PartitionLink { a, b, from_ms, heal_ms } => Some((*a, *b, *from_ms, *heal_ms)),
            _ => None,
        })
    }

    /// Planned data corruptions as `(node, target, at_ms)` triples.
    pub fn corruptions(&self) -> impl Iterator<Item = (NodeId, CorruptTarget, u64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::CorruptData { node, target, at_ms } => Some((*node, *target, *at_ms)),
            _ => None,
        })
    }

    /// Tasks directly targeted by kill faults (the injected victims for
    /// spatial-amplification accounting).
    pub fn kill_targets(&self) -> Vec<TaskId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::KillTask { task, .. } => Some(*task),
                _ => None,
            })
            .collect()
    }

    /// Number of directly injected failure-producing faults (the divisor in
    /// the paper's "additional failures" amplification accounting). Slow
    /// nodes are perturbations, not failures, and are excluded.
    pub fn injected_count(&self) -> usize {
        self.faults.iter().filter(|f| f.produces_failures()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::JobId;

    fn job() -> JobId {
        JobId(1)
    }

    #[test]
    fn liveness_presumption_per_kind() {
        assert!(FailureKind::TaskOom.node_presumed_alive());
        assert!(FailureKind::SlowNode.node_presumed_alive());
        assert!(FailureKind::TaskTimeout.node_presumed_alive());
        assert!(!FailureKind::NodeCrash.node_presumed_alive());
        assert!(!FailureKind::FetchFailureLimit.node_presumed_alive());
        assert!(FailureKind::NetworkPartition.node_presumed_alive());
        assert!(FailureKind::DataCorruption.node_presumed_alive());
    }

    /// Satellite: every variant must appear in `ALL`, label uniquely via
    /// `as_str`, and survive a serde round trip — so adding a variant
    /// cannot silently miss report labeling.
    #[test]
    fn failure_kind_exhaustive_as_str_and_serde_round_trip() {
        let mut labels = std::collections::HashSet::new();
        for kind in FailureKind::ALL {
            // Exhaustiveness: if a new variant is added without extending
            // ALL, this match stops compiling.
            match kind {
                FailureKind::TaskOom
                | FailureKind::NodeCrash
                | FailureKind::FetchFailureLimit
                | FailureKind::TaskTimeout
                | FailureKind::SlowNode
                | FailureKind::NetworkPartition
                | FailureKind::DataCorruption => {}
            }
            let s = kind.as_str();
            assert!(!s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{s:?}");
            assert!(labels.insert(s), "duplicate label {s}");
            assert_eq!(kind.to_string(), s, "Display must agree with as_str");
            let json = serde_json::to_string(&kind).unwrap();
            let back: FailureKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        assert_eq!(labels.len(), FailureKind::ALL.len());
    }

    #[test]
    fn transient_kinds_are_transient() {
        for kind in FailureKind::ALL {
            let transient = matches!(kind, FailureKind::NetworkPartition | FailureKind::DataCorruption);
            assert_eq!(kind.is_transient(), transient, "{kind}");
            if kind.is_transient() {
                assert!(kind.node_presumed_alive(), "{kind}: transient faults leave the node healthy");
            }
        }
    }

    #[test]
    fn task_failure_sorts_into_right_bucket() {
        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::reduce(job(), 0));
        assert_eq!(r.failed_reduces.len(), 1);
        assert!(r.failed_maps.is_empty());
        assert!(r.node_alive);
        r.validate().unwrap();

        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::map(job(), 7));
        assert_eq!(r.failed_maps.len(), 1);
        assert!(r.failed_reduces.is_empty());
    }

    #[test]
    fn node_crash_merges_running_and_lost_mofs() {
        let running = vec![TaskId::map(job(), 1), TaskId::reduce(job(), 2)];
        // Map 1 both runs there and has a (previous attempt) MOF there.
        let lost = vec![TaskId::map(job(), 1), TaskId::map(job(), 5)];
        let r = FailureReport::node_crash(NodeId(9), running, lost);
        assert!(!r.node_alive);
        assert_eq!(r.failed_reduces, vec![TaskId::reduce(job(), 2)]);
        assert_eq!(r.failed_maps.len(), 2, "map 1 deduplicated");
        assert_eq!(r.failure_count(), 3);
        r.validate().unwrap();
    }

    #[test]
    fn validation_catches_misfiled_tasks() {
        let mut r = FailureReport::task_failure(NodeId(0), FailureKind::TaskOom, TaskId::map(job(), 0));
        r.failed_reduces.push(TaskId::map(job(), 1));
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_duplicates() {
        let t = TaskId::reduce(job(), 4);
        let r = FailureReport {
            source_node: NodeId(0),
            node_alive: true,
            kind: FailureKind::TaskOom,
            failed_reduces: vec![t, t],
            failed_maps: vec![],
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn kill_point_matches_task_and_attempt() {
        let t = TaskId::reduce(JobId(0), 1);
        let plan = FaultPlan::kill_task(t, 0.5);
        assert_eq!(plan.kill_point(t, 0), Some(0.5));
        assert_eq!(plan.kill_point(t, 1), None, "recovery attempts are not re-killed");
        assert_eq!(plan.kill_point(TaskId::reduce(JobId(0), 2), 0), None);
    }

    #[test]
    fn plans_compose() {
        let t = TaskId::map(JobId(0), 0);
        let plan = FaultPlan::kill_task(t, 0.1).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.injected_count(), 2);
        assert_eq!(plan.kill_targets(), vec![t]);
    }

    #[test]
    fn slow_nodes_perturb_but_do_not_count_as_failures() {
        let plan = FaultPlan::slow_node(NodeId(1), 50, 3.0).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.injected_count(), 1, "only the crash produces failures");
        let slows: Vec<_> = plan.slow_nodes().collect();
        assert_eq!(slows, vec![(NodeId(1), 50, 3.0)]);
    }

    #[test]
    fn fault_plan_serde_round_trip() {
        let plan = FaultPlan::kill_task(TaskId::reduce(JobId(2), 0), 0.7)
            .and(FaultPlan::crash_node_at_reduce_progress(NodeId(3), 1, 0.4))
            .and(FaultPlan::slow_node(NodeId(0), 10, 2.5))
            .and(FaultPlan::partition_link(NodeId(1), NodeId(2), 100, 400))
            .and(FaultPlan::corrupt_data(
                NodeId(4),
                CorruptTarget::MofPartition { map_index: 3, partition: 1 },
                250,
            ))
            .and(FaultPlan::corrupt_data(
                NodeId(1),
                CorruptTarget::DfsBlock { reduce_index: 2, block: 0 },
                300,
            ));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn transient_faults_do_not_count_as_injected_failures() {
        let plan = FaultPlan::partition_link(NodeId(0), NodeId(1), 10, 90)
            .and(FaultPlan::corrupt_data(NodeId(2), CorruptTarget::AlgRecord { reduce_index: 0, seq: 3 }, 50))
            .and(FaultPlan::crash_node_at_ms(NodeId(3), 200));
        assert_eq!(plan.injected_count(), 1, "only the crash produces failures");
        let parts: Vec<_> = plan.partitions().collect();
        assert_eq!(parts, vec![(NodeId(0), NodeId(1), 10, 90)]);
        let corr: Vec<_> = plan.corruptions().collect();
        assert_eq!(corr.len(), 1);
        assert_eq!(corr[0].0, NodeId(2));
        assert_eq!(corr[0].2, 50);
        assert!(matches!(corr[0].1, CorruptTarget::AlgRecord { reduce_index: 0, seq: 3 }));
    }
}
