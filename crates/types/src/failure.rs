//! Failure descriptions and the engine-neutral fault-injection vocabulary.
//!
//! [`FailureReport`] is exactly the input of the paper's Algorithm 1
//! ("Enhanced Failure Recovery Scheduling Policy"): the set of failed
//! ReduceTasks, the set of failed MapTasks *plus* MapTasks whose output
//! files (MOFs) were lost, and the source node of the report with its
//! liveness. Both the baseline scheduler and the SFM policy consume it.
//!
//! [`Fault`] and [`FaultPlan`] are the *input* side of the same story: one
//! declarative description of the faults to inject into a run, shared by
//! the threaded runtime (which consumes it directly, on its real-time
//! millisecond clock) and the discrete-event simulator (which lowers it to
//! per-task/per-node triggers in virtual seconds). Scenario tooling such as
//! `alm-chaos` speaks only this vocabulary and stays engine-agnostic.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::id::{NodeId, TaskId};

/// Root cause of a task or node failure, mirroring the fault classes the
/// paper injects (§II-B, §V-A) and the cascades it analyses (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Injected out-of-memory exception: a transient single-task fault.
    TaskOom,
    /// The task's host stopped responding (network services stopped /
    /// machine crash). Detected only after the liveness timeout.
    NodeCrash,
    /// A reducer exceeded its fetch-failure budget against lost MOFs and
    /// was preempted by the scheduler — the amplification mechanism.
    FetchFailureLimit,
    /// No progress within the task timeout.
    TaskTimeout,
    /// Node responsive but pathologically slow ("faulty node", §IV-B).
    SlowNode,
    /// Node alive and heartbeating but unreachable over the data plane —
    /// a severed shuffle/DFS link that will heal. The ambiguous half of
    /// §II-C's amplification story: presuming this dead is the mistake.
    NetworkPartition,
    /// Stored bytes (MOF partition or ALG log record) failed their
    /// checksum on read. The host keeps heartbeating; the data, not the
    /// node, is faulty.
    DataCorruption,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FailureKind {
    /// Every variant, for exhaustiveness tests over report labeling.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::TaskOom,
        FailureKind::NodeCrash,
        FailureKind::FetchFailureLimit,
        FailureKind::TaskTimeout,
        FailureKind::SlowNode,
        FailureKind::NetworkPartition,
        FailureKind::DataCorruption,
    ];

    /// Stable kebab-case label used in reports and rendered tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::TaskOom => "task-oom",
            FailureKind::NodeCrash => "node-crash",
            FailureKind::FetchFailureLimit => "fetch-failure-limit",
            FailureKind::TaskTimeout => "task-timeout",
            FailureKind::SlowNode => "slow-node",
            FailureKind::NetworkPartition => "network-partition",
            FailureKind::DataCorruption => "data-corruption",
        }
    }

    /// Whether recovery may re-use the same node (the node is believed
    /// healthy). Algorithm 1 line 9's "N is still alive" check. Transient
    /// kinds (partition, corruption) leave the node healthy by definition.
    pub fn node_presumed_alive(&self) -> bool {
        matches!(
            self,
            FailureKind::TaskOom
                | FailureKind::TaskTimeout
                | FailureKind::SlowNode
                | FailureKind::NetworkPartition
                | FailureKind::DataCorruption
        )
    }

    /// Transient kinds: the fault clears by itself (a partition heals, a
    /// corrupted read is re-fetched) and must never escalate to node-lost
    /// handling while the node heartbeats.
    pub fn is_transient(&self) -> bool {
        matches!(self, FailureKind::NetworkPartition | FailureKind::DataCorruption)
    }
}

/// A failure report `R` as consumed by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// The node the report concerns (Algorithm 1's `N`).
    pub source_node: NodeId,
    /// Whether `N` is still alive (heartbeating) at report time.
    pub node_alive: bool,
    /// Why the report was raised.
    pub kind: FailureKind,
    /// Failed ReduceTasks in `R` (`T_reduces`).
    pub failed_reduces: Vec<TaskId>,
    /// Failed MapTasks in `R` *and* maps whose MOFs were lost (`T_maps`).
    pub failed_maps: Vec<TaskId>,
}

impl FailureReport {
    /// A report for a single transient task failure on a live node.
    pub fn task_failure(node: NodeId, kind: FailureKind, task: TaskId) -> Self {
        let mut r = FailureReport {
            source_node: node,
            node_alive: kind.node_presumed_alive(),
            kind,
            failed_reduces: Vec::new(),
            failed_maps: Vec::new(),
        };
        if task.is_reduce() {
            r.failed_reduces.push(task);
        } else {
            r.failed_maps.push(task);
        }
        r
    }

    /// A report for a crashed node: every running task on it fails and
    /// every MOF it hosted is lost.
    pub fn node_crash(
        node: NodeId,
        running_tasks: impl IntoIterator<Item = TaskId>,
        lost_mof_maps: impl IntoIterator<Item = TaskId>,
    ) -> Self {
        let mut failed_reduces = Vec::new();
        let mut failed_maps: Vec<TaskId> = Vec::new();
        for t in running_tasks {
            if t.is_reduce() {
                failed_reduces.push(t);
            } else {
                failed_maps.push(t);
            }
        }
        for m in lost_mof_maps {
            debug_assert!(m.is_map(), "lost MOFs belong to map tasks");
            if !failed_maps.contains(&m) {
                failed_maps.push(m);
            }
        }
        FailureReport {
            source_node: node,
            node_alive: false,
            kind: FailureKind::NodeCrash,
            failed_reduces,
            failed_maps,
        }
    }

    /// Total number of task failures carried by the report.
    pub fn failure_count(&self) -> usize {
        self.failed_reduces.len() + self.failed_maps.len()
    }

    /// Internal consistency: reduces are reduces, maps are maps, no dups.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.failed_reduces.iter().find(|t| !t.is_reduce()) {
            return Err(format!("{t} listed in failed_reduces but is not a reduce"));
        }
        if let Some(t) = self.failed_maps.iter().find(|t| !t.is_map()) {
            return Err(format!("{t} listed in failed_maps but is not a map"));
        }
        let mut seen = std::collections::HashSet::new();
        for t in self.failed_reduces.iter().chain(self.failed_maps.iter()) {
            if !seen.insert(*t) {
                return Err(format!("duplicate task {t} in failure report"));
            }
        }
        Ok(())
    }
}

/// Which way a link fault cuts. Real partitions are frequently
/// *asymmetric* — a broken switch ACL or a one-way routing loop lets
/// traffic flow `b → a` while `a → b` blackholes — so link faults carry a
/// direction instead of assuming symmetry. `AToB` means traffic *from*
/// `a` *to* `b` is affected (a cannot open a fetch connection to b) while
/// the reverse path, and with it heartbeats and failure reports, stays
/// healthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Both directions cut — the classic symmetric partition.
    #[default]
    Both,
    /// Only `a → b` traffic is affected; `b → a` stays healthy.
    AToB,
    /// Only `b → a` traffic is affected; `a → b` stays healthy.
    BToA,
}

impl LinkDirection {
    /// Every variant, for exhaustiveness tests.
    pub const ALL: [LinkDirection; 3] = [LinkDirection::Both, LinkDirection::AToB, LinkDirection::BToA];

    /// Stable kebab-case label for reports and rendered tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            LinkDirection::Both => "both",
            LinkDirection::AToB => "a-to-b",
            LinkDirection::BToA => "b-to-a",
        }
    }

    /// The concrete directed `(from, to)` keys this direction cuts on the
    /// endpoint pair `(a, b)`. This is the ONE place directed-link keys
    /// are derived: the runtime's `LinkTable` and the simulator's severed
    /// set both store exactly these pairs, so the two engines' key
    /// normalisation cannot drift.
    pub fn directed_keys<N: Copy>(&self, a: N, b: N) -> Vec<(N, N)> {
        match self {
            LinkDirection::Both => vec![(a, b), (b, a)],
            LinkDirection::AToB => vec![(a, b)],
            LinkDirection::BToA => vec![(b, a)],
        }
    }
}

impl fmt::Display for LinkDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Deterministic arithmetic mixer (splitmix64 finalizer) used to jitter
/// flap windows. Pure function of its inputs — no RNG state, no entropy
/// source — so both engines expand byte-identical windows from the plan
/// alone.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bounded, seeded sever/heal flapping schedule layered on one
/// [`Fault::PartitionLink`]. Cycle `i` severs at `from_ms + i *
/// period_ms` and heals after a down-span jittered deterministically from
/// `seed` into `[down_ms/2, down_ms]` (clamped to end strictly before the
/// next cycle's sever, so windows from one schedule can never overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapSchedule {
    /// Jitter seed; two schedules with the same seed expand identically.
    pub seed: u64,
    /// Number of sever/heal cycles (bounded; clamped to 64).
    pub cycles: u32,
    /// Milliseconds from one sever to the next (clamped to >= 2).
    pub period_ms: u64,
    /// Nominal down-span per cycle; the realised span is jittered into
    /// `[down_ms/2, down_ms]` and clamped to `period_ms - 1`.
    pub down_ms: u64,
}

impl FlapSchedule {
    /// Expand to concrete `(sever_ms, heal_ms)` windows starting at
    /// `from_ms`. Windows are strictly increasing and non-overlapping:
    /// every heal lands before the next sever.
    pub fn windows(&self, from_ms: u64) -> Vec<(u64, u64)> {
        let period = self.period_ms.max(2);
        let hi = self.down_ms.clamp(1, period - 1);
        let lo = (hi / 2).max(1);
        (0..self.cycles.min(64))
            .map(|i| {
                let sever = from_ms + u64::from(i) * period;
                let down = lo + mix64(self.seed ^ u64::from(i)) % (hi - lo + 1);
                (sever, sever + down)
            })
            .collect()
    }

    /// The final heal time of the expanded schedule (equals `from_ms`
    /// when the schedule has zero cycles).
    pub fn end_ms(&self, from_ms: u64) -> u64 {
        self.windows(from_ms).last().map_or(from_ms, |w| w.1)
    }
}

/// One concrete sever→heal window of a (possibly flapping, possibly
/// asymmetric) link partition, as consumed by the engines' lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    pub a: NodeId,
    pub b: NodeId,
    pub direction: LinkDirection,
    pub from_ms: u64,
    pub heal_ms: u64,
}

/// One planned degraded-link activation, as consumed by the engines'
/// lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    pub a: NodeId,
    pub b: NodeId,
    pub direction: LinkDirection,
    pub from_ms: u64,
    pub heal_ms: u64,
    /// Transfer slowdown factor (>= 1; 2.0 = fetches take twice as long).
    pub factor: f64,
    /// Probability in `[0, 1)` that one fetch transfer is dropped and must
    /// be transparently retried (never charged to the retry budget).
    pub loss: f64,
}

/// What a [`Fault::CorruptData`] injection flips bytes in: the durable
/// artifacts the recovery paths read back — shuffle MOF partitions, ALG
/// analytics-log records, and committed DFS output blocks. All three are
/// CRC32-framed so corruption is *detected* (distinct checksum-mismatch
/// error) and then *tolerated* (re-fetch / truncate-and-resume / replica
/// failover + re-replication) instead of escalating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptTarget {
    /// One partition of map `map_index`'s MOF on the target node.
    MofPartition { map_index: u32, partition: u32 },
    /// The ALG log record with sequence `seq` of reduce `reduce_index`.
    AlgRecord { reduce_index: u32, seq: u64 },
    /// One replica of block `block` of reduce `reduce_index`'s committed
    /// output file on the DFS (the replica hosted on the fault's `node`
    /// when one lives there, the first replica otherwise). A verified read
    /// must fail over to a healthy replica and queue re-replication; only
    /// rotting every replica may surface as a (checksum-failure) error.
    DfsBlock { reduce_index: u32, block: u32 },
}

/// One planned fault, in engine-neutral terms (§V-A's injection
/// methodology: "We inject out-of-memory exceptions to crash a task to
/// emulate the transient task failures and stop the network services on a
/// node for node failures").
///
/// Progress triggers (`at_progress`) are fractions in `[0, 1]` and mean the
/// same thing in both engines. Absolute-time triggers (`at_ms`) are in the
/// consuming engine's native milliseconds: the threaded runtime reads them
/// against its real-time clock, the simulator divides by 1000 into virtual
/// seconds. Cross-engine tooling that needs one wall-clock meaning for both
/// engines must rescale times before lowering (see `alm-chaos`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Inject an OOM into a specific attempt of `task` once it reaches
    /// `at_progress` of its own work.
    KillTask { task: TaskId, attempt_number: u32, at_progress: f64 },
    /// Crash a node at an absolute time since job start.
    CrashNodeAtMs { node: NodeId, at_ms: u64 },
    /// Crash a node once reduce `reduce_index` reaches `at_progress` of its
    /// reduce-phase work (how Figs. 9/10 and Table II place node failures
    /// "at X% of the reduce phase").
    CrashNodeAtReduceProgress { node: NodeId, reduce_index: u32, at_progress: f64 },
    /// Degrade a node's compute speed by `factor` (>= 1; 2.0 = half speed)
    /// from `at_ms` on. The node keeps heartbeating — the paper's
    /// faulty-but-alive "slow node" (§IV-B), which produces stragglers
    /// rather than failure reports.
    SlowNode { node: NodeId, at_ms: u64, factor: f64 },
    /// Sever the data-plane link between nodes `a` and `b` from `from_ms`
    /// until `heal_ms`, in the given [`LinkDirection`]. The affected
    /// node(s) stay alive and heartbeating but cannot fetch shuffle or DFS
    /// traffic across the cut direction until the partition heals — the
    /// ambiguous transient fault §II-C's amplification cascade starts
    /// from. With a [`FlapSchedule`], the link instead severs and heals
    /// repeatedly: `flap.windows(from_ms)` replaces the single
    /// `(from_ms, heal_ms)` window and `heal_ms` is advisory (the
    /// schedule's final heal).
    PartitionLink {
        a: NodeId,
        b: NodeId,
        direction: LinkDirection,
        from_ms: u64,
        heal_ms: u64,
        flap: Option<FlapSchedule>,
    },
    /// The canonical *gray* failure: the link between `a` and `b` stays
    /// up, but from `from_ms` until `heal_ms` transfers across the cut
    /// direction run `factor`× slower and each transfer is dropped with
    /// probability `loss` (deterministic seeded draws). Nothing is
    /// unreachable, nothing fails — the stack must absorb the degradation
    /// without charging the fetch retry budget or declaring anything dead.
    DegradedLink {
        a: NodeId,
        b: NodeId,
        direction: LinkDirection,
        from_ms: u64,
        heal_ms: u64,
        factor: f64,
        loss: f64,
    },
    /// Flip bytes in a durable artifact on `node` at `at_ms`. The host
    /// stays healthy; readers must detect the damage via checksums and
    /// recover (re-fetch the partition / truncate the log) without
    /// re-executing healthy work.
    CorruptData { node: NodeId, target: CorruptTarget, at_ms: u64 },
}

impl Fault {
    /// Whether this fault directly produces task-failure events (used for
    /// the paper's "additional failures" amplification accounting). A slow
    /// node only degrades, it does not fail anything by itself; transient
    /// faults (link partitions, data corruption) are *tolerated* — a
    /// correct stack turns them into zero task failures, so counting them
    /// as injected failures would hide amplification behind a bigger
    /// denominator.
    pub fn produces_failures(&self) -> bool {
        !matches!(
            self,
            Fault::SlowNode { .. }
                | Fault::PartitionLink { .. }
                | Fault::DegradedLink { .. }
                | Fault::CorruptData { .. }
        )
    }
}

/// The set of faults to inject into one job run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn kill_task(task: TaskId, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::KillTask { task, attempt_number: 0, at_progress }] }
    }

    pub fn crash_node_at_ms(node: NodeId, at_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtMs { node, at_ms }] }
    }

    pub fn crash_node_at_reduce_progress(node: NodeId, reduce_index: u32, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtReduceProgress { node, reduce_index, at_progress }] }
    }

    pub fn slow_node(node: NodeId, at_ms: u64, factor: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::SlowNode { node, at_ms, factor }] }
    }

    /// Symmetric single-window partition (the classic case).
    pub fn partition_link(a: NodeId, b: NodeId, from_ms: u64, heal_ms: u64) -> FaultPlan {
        FaultPlan::partition_link_directed(a, b, LinkDirection::Both, from_ms, heal_ms)
    }

    /// Partition cutting only the given direction.
    pub fn partition_link_directed(
        a: NodeId,
        b: NodeId,
        direction: LinkDirection,
        from_ms: u64,
        heal_ms: u64,
    ) -> FaultPlan {
        FaultPlan { faults: vec![Fault::PartitionLink { a, b, direction, from_ms, heal_ms, flap: None }] }
    }

    /// Flapping partition: `flap.windows(from_ms)` sever/heal cycles on
    /// the link, cutting `direction`.
    pub fn flapping_link(
        a: NodeId,
        b: NodeId,
        direction: LinkDirection,
        from_ms: u64,
        flap: FlapSchedule,
    ) -> FaultPlan {
        let heal_ms = flap.end_ms(from_ms);
        FaultPlan {
            faults: vec![Fault::PartitionLink { a, b, direction, from_ms, heal_ms, flap: Some(flap) }],
        }
    }

    /// Degraded (slow/lossy but alive) link across `direction`.
    pub fn degraded_link(
        a: NodeId,
        b: NodeId,
        direction: LinkDirection,
        from_ms: u64,
        heal_ms: u64,
        factor: f64,
        loss: f64,
    ) -> FaultPlan {
        FaultPlan { faults: vec![Fault::DegradedLink { a, b, direction, from_ms, heal_ms, factor, loss }] }
    }

    pub fn corrupt_data(node: NodeId, target: CorruptTarget, at_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CorruptData { node, target, at_ms }] }
    }

    pub fn and(mut self, other: FaultPlan) -> FaultPlan {
        self.faults.extend(other.faults);
        self
    }

    /// The self-kill progress point for a given attempt, if planned.
    pub fn kill_point(&self, task: TaskId, attempt_number: u32) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::KillTask { task: t, attempt_number: a, at_progress }
                if *t == task && *a == attempt_number =>
            {
                Some(*at_progress)
            }
            _ => None,
        })
    }

    /// Planned slow-node degradations as `(node, at_ms, factor)` triples.
    pub fn slow_nodes(&self) -> impl Iterator<Item = (NodeId, u64, f64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::SlowNode { node, at_ms, factor } => Some((*node, *at_ms, *factor)),
            _ => None,
        })
    }

    /// Planned link partitions expanded to concrete sever→heal windows:
    /// one window per plain partition, one per flap cycle for flapping
    /// partitions. Both engines lower from exactly this expansion.
    pub fn partition_windows(&self) -> Vec<PartitionWindow> {
        let mut out = Vec::new();
        for f in &self.faults {
            if let Fault::PartitionLink { a, b, direction, from_ms, heal_ms, flap } = f {
                match flap {
                    Some(schedule) => {
                        out.extend(schedule.windows(*from_ms).into_iter().map(|(from_ms, heal_ms)| {
                            PartitionWindow { a: *a, b: *b, direction: *direction, from_ms, heal_ms }
                        }))
                    }
                    None => out.push(PartitionWindow {
                        a: *a,
                        b: *b,
                        direction: *direction,
                        from_ms: *from_ms,
                        heal_ms: *heal_ms,
                    }),
                }
            }
        }
        out
    }

    /// Planned degraded-link activations.
    pub fn degradations(&self) -> impl Iterator<Item = LinkDegradation> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::DegradedLink { a, b, direction, from_ms, heal_ms, factor, loss } => {
                Some(LinkDegradation {
                    a: *a,
                    b: *b,
                    direction: *direction,
                    from_ms: *from_ms,
                    heal_ms: *heal_ms,
                    factor: *factor,
                    loss: *loss,
                })
            }
            _ => None,
        })
    }

    /// Planned data corruptions as `(node, target, at_ms)` triples.
    pub fn corruptions(&self) -> impl Iterator<Item = (NodeId, CorruptTarget, u64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::CorruptData { node, target, at_ms } => Some((*node, *target, *at_ms)),
            _ => None,
        })
    }

    /// Tasks directly targeted by kill faults (the injected victims for
    /// spatial-amplification accounting).
    pub fn kill_targets(&self) -> Vec<TaskId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::KillTask { task, .. } => Some(*task),
                _ => None,
            })
            .collect()
    }

    /// Number of directly injected failure-producing faults (the divisor in
    /// the paper's "additional failures" amplification accounting). Slow
    /// nodes are perturbations, not failures, and are excluded.
    pub fn injected_count(&self) -> usize {
        self.faults.iter().filter(|f| f.produces_failures()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::JobId;

    fn job() -> JobId {
        JobId(1)
    }

    #[test]
    fn liveness_presumption_per_kind() {
        assert!(FailureKind::TaskOom.node_presumed_alive());
        assert!(FailureKind::SlowNode.node_presumed_alive());
        assert!(FailureKind::TaskTimeout.node_presumed_alive());
        assert!(!FailureKind::NodeCrash.node_presumed_alive());
        assert!(!FailureKind::FetchFailureLimit.node_presumed_alive());
        assert!(FailureKind::NetworkPartition.node_presumed_alive());
        assert!(FailureKind::DataCorruption.node_presumed_alive());
    }

    /// Satellite: every variant must appear in `ALL`, label uniquely via
    /// `as_str`, and survive a serde round trip — so adding a variant
    /// cannot silently miss report labeling.
    #[test]
    fn failure_kind_exhaustive_as_str_and_serde_round_trip() {
        let mut labels = std::collections::HashSet::new();
        for kind in FailureKind::ALL {
            // Exhaustiveness: if a new variant is added without extending
            // ALL, this match stops compiling.
            match kind {
                FailureKind::TaskOom
                | FailureKind::NodeCrash
                | FailureKind::FetchFailureLimit
                | FailureKind::TaskTimeout
                | FailureKind::SlowNode
                | FailureKind::NetworkPartition
                | FailureKind::DataCorruption => {}
            }
            let s = kind.as_str();
            assert!(!s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{s:?}");
            assert!(labels.insert(s), "duplicate label {s}");
            assert_eq!(kind.to_string(), s, "Display must agree with as_str");
            let json = serde_json::to_string(&kind).unwrap();
            let back: FailureKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        assert_eq!(labels.len(), FailureKind::ALL.len());
    }

    #[test]
    fn transient_kinds_are_transient() {
        for kind in FailureKind::ALL {
            let transient = matches!(kind, FailureKind::NetworkPartition | FailureKind::DataCorruption);
            assert_eq!(kind.is_transient(), transient, "{kind}");
            if kind.is_transient() {
                assert!(kind.node_presumed_alive(), "{kind}: transient faults leave the node healthy");
            }
        }
    }

    #[test]
    fn task_failure_sorts_into_right_bucket() {
        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::reduce(job(), 0));
        assert_eq!(r.failed_reduces.len(), 1);
        assert!(r.failed_maps.is_empty());
        assert!(r.node_alive);
        r.validate().unwrap();

        let r = FailureReport::task_failure(NodeId(3), FailureKind::TaskOom, TaskId::map(job(), 7));
        assert_eq!(r.failed_maps.len(), 1);
        assert!(r.failed_reduces.is_empty());
    }

    #[test]
    fn node_crash_merges_running_and_lost_mofs() {
        let running = vec![TaskId::map(job(), 1), TaskId::reduce(job(), 2)];
        // Map 1 both runs there and has a (previous attempt) MOF there.
        let lost = vec![TaskId::map(job(), 1), TaskId::map(job(), 5)];
        let r = FailureReport::node_crash(NodeId(9), running, lost);
        assert!(!r.node_alive);
        assert_eq!(r.failed_reduces, vec![TaskId::reduce(job(), 2)]);
        assert_eq!(r.failed_maps.len(), 2, "map 1 deduplicated");
        assert_eq!(r.failure_count(), 3);
        r.validate().unwrap();
    }

    #[test]
    fn validation_catches_misfiled_tasks() {
        let mut r = FailureReport::task_failure(NodeId(0), FailureKind::TaskOom, TaskId::map(job(), 0));
        r.failed_reduces.push(TaskId::map(job(), 1));
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_duplicates() {
        let t = TaskId::reduce(job(), 4);
        let r = FailureReport {
            source_node: NodeId(0),
            node_alive: true,
            kind: FailureKind::TaskOom,
            failed_reduces: vec![t, t],
            failed_maps: vec![],
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn kill_point_matches_task_and_attempt() {
        let t = TaskId::reduce(JobId(0), 1);
        let plan = FaultPlan::kill_task(t, 0.5);
        assert_eq!(plan.kill_point(t, 0), Some(0.5));
        assert_eq!(plan.kill_point(t, 1), None, "recovery attempts are not re-killed");
        assert_eq!(plan.kill_point(TaskId::reduce(JobId(0), 2), 0), None);
    }

    #[test]
    fn plans_compose() {
        let t = TaskId::map(JobId(0), 0);
        let plan = FaultPlan::kill_task(t, 0.1).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.injected_count(), 2);
        assert_eq!(plan.kill_targets(), vec![t]);
    }

    #[test]
    fn slow_nodes_perturb_but_do_not_count_as_failures() {
        let plan = FaultPlan::slow_node(NodeId(1), 50, 3.0).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.injected_count(), 1, "only the crash produces failures");
        let slows: Vec<_> = plan.slow_nodes().collect();
        assert_eq!(slows, vec![(NodeId(1), 50, 3.0)]);
    }

    #[test]
    fn fault_plan_serde_round_trip() {
        let plan = FaultPlan::kill_task(TaskId::reduce(JobId(2), 0), 0.7)
            .and(FaultPlan::crash_node_at_reduce_progress(NodeId(3), 1, 0.4))
            .and(FaultPlan::slow_node(NodeId(0), 10, 2.5))
            .and(FaultPlan::partition_link(NodeId(1), NodeId(2), 100, 400))
            .and(FaultPlan::corrupt_data(
                NodeId(4),
                CorruptTarget::MofPartition { map_index: 3, partition: 1 },
                250,
            ))
            .and(FaultPlan::corrupt_data(
                NodeId(1),
                CorruptTarget::DfsBlock { reduce_index: 2, block: 0 },
                300,
            ))
            .and(FaultPlan::flapping_link(
                NodeId(0),
                NodeId(4),
                LinkDirection::AToB,
                50,
                FlapSchedule { seed: 7, cycles: 3, period_ms: 100, down_ms: 40 },
            ))
            .and(FaultPlan::degraded_link(NodeId(2), NodeId(3), LinkDirection::BToA, 0, 500, 3.0, 0.25));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn direction_expands_to_the_shared_directed_keys() {
        assert_eq!(LinkDirection::Both.directed_keys(1u32, 2u32), vec![(1, 2), (2, 1)]);
        assert_eq!(LinkDirection::AToB.directed_keys(1u32, 2u32), vec![(1, 2)]);
        assert_eq!(LinkDirection::BToA.directed_keys(1u32, 2u32), vec![(2, 1)]);
        // Exhaustiveness + label sanity, mirroring the FailureKind test.
        let mut labels = std::collections::HashSet::new();
        for d in LinkDirection::ALL {
            match d {
                LinkDirection::Both | LinkDirection::AToB | LinkDirection::BToA => {}
            }
            assert!(labels.insert(d.as_str()), "duplicate label {d}");
            let back: LinkDirection = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
            assert_eq!(back, d);
        }
        assert_eq!(LinkDirection::default(), LinkDirection::Both);
    }

    #[test]
    fn flap_windows_are_bounded_ordered_and_non_overlapping() {
        for seed in 0..50u64 {
            let flap = FlapSchedule { seed, cycles: 5, period_ms: 30, down_ms: 20 };
            let windows = flap.windows(100);
            assert_eq!(windows.len(), 5);
            for (i, &(sever, heal)) in windows.iter().enumerate() {
                assert_eq!(sever, 100 + i as u64 * 30);
                assert!(heal > sever, "zero-length window at seed {seed}");
                assert!(heal - sever <= 20, "down span beyond nominal at seed {seed}");
                assert!(heal - sever >= 10, "down span under half nominal at seed {seed}");
            }
            for pair in windows.windows(2) {
                assert!(pair[0].1 < pair[1].0, "windows overlap at seed {seed}: {windows:?}");
            }
            assert_eq!(flap.end_ms(100), windows.last().unwrap().1);
            assert_eq!(flap.windows(100), windows, "expansion must be deterministic");
        }
        // Degenerate inputs clamp instead of panicking or overlapping.
        let tight = FlapSchedule { seed: 3, cycles: 2, period_ms: 0, down_ms: 0 };
        let w = tight.windows(0);
        assert_eq!(w.len(), 2);
        assert!(w[0].1 < w[1].0, "{w:?}");
        assert_eq!(FlapSchedule { seed: 0, cycles: 0, period_ms: 10, down_ms: 5 }.end_ms(42), 42);
    }

    #[test]
    fn transient_faults_do_not_count_as_injected_failures() {
        let plan = FaultPlan::partition_link(NodeId(0), NodeId(1), 10, 90)
            .and(FaultPlan::corrupt_data(NodeId(2), CorruptTarget::AlgRecord { reduce_index: 0, seq: 3 }, 50))
            .and(FaultPlan::degraded_link(NodeId(0), NodeId(2), LinkDirection::Both, 0, 100, 2.0, 0.1))
            .and(FaultPlan::crash_node_at_ms(NodeId(3), 200));
        assert_eq!(plan.injected_count(), 1, "only the crash produces failures");
        let parts = plan.partition_windows();
        assert_eq!(
            parts,
            vec![PartitionWindow {
                a: NodeId(0),
                b: NodeId(1),
                direction: LinkDirection::Both,
                from_ms: 10,
                heal_ms: 90
            }]
        );
        let degs: Vec<_> = plan.degradations().collect();
        assert_eq!(degs.len(), 1);
        assert_eq!((degs[0].factor, degs[0].loss), (2.0, 0.1));
        let corr: Vec<_> = plan.corruptions().collect();
        assert_eq!(corr.len(), 1);
        assert_eq!(corr[0].0, NodeId(2));
        assert_eq!(corr[0].2, 50);
        assert!(matches!(corr[0].1, CorruptTarget::AlgRecord { reduce_index: 0, seq: 3 }));
    }

    #[test]
    fn flapping_plan_expands_one_window_per_cycle() {
        let flap = FlapSchedule { seed: 11, cycles: 4, period_ms: 60, down_ms: 30 };
        let plan = FaultPlan::flapping_link(NodeId(1), NodeId(2), LinkDirection::AToB, 20, flap);
        let windows = plan.partition_windows();
        assert_eq!(windows.len(), 4);
        assert!(windows.iter().all(|w| w.direction == LinkDirection::AToB));
        assert_eq!(windows.last().unwrap().heal_ms, flap.end_ms(20));
        match &plan.faults[0] {
            Fault::PartitionLink { heal_ms, .. } => assert_eq!(*heal_ms, flap.end_ms(20)),
            other => panic!("unexpected fault {other:?}"),
        }
        assert_eq!(plan.injected_count(), 0, "a flapping partition is still transient");
    }
}
