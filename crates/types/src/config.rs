//! Configuration surface.
//!
//! [`YarnConfig`] carries the cluster/framework parameters of Table I of the
//! paper plus the failure-detection knobs the amplification analysis depends
//! on (node liveness timeout, shuffle fetch retry limits). [`AlmConfig`]
//! carries the knobs of the paper's contribution: logging frequency and log
//! replication level for ALG (§III), and the scheduling limits of
//! Algorithm 1 for SFM (§IV).

use serde::{Deserialize, Serialize};

use crate::units::{GB, KB, MB};

/// How the framework recovers from failures. The four evaluation modes of §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Stock YARN task re-execution: restart failed tasks from scratch,
    /// rely on running ReduceTasks to discover lost MOFs.
    Baseline,
    /// Analytics logging only: failed ReduceTasks resume from their logs.
    Alg,
    /// Speculative fast migration only: proactive MapTask regeneration,
    /// ReduceTask migration, fast collective merging; no log resume.
    Sfm,
    /// The full ALM framework: SFM leveraging ALG's logged analytics.
    SfmAlg,
}

impl RecoveryMode {
    /// Whether ReduceTasks write analytics logs in this mode.
    pub fn logs_enabled(&self) -> bool {
        matches!(self, RecoveryMode::Alg | RecoveryMode::SfmAlg)
    }

    /// Whether node failures are handled by speculative fast migration.
    pub fn sfm_enabled(&self) -> bool {
        matches!(self, RecoveryMode::Sfm | RecoveryMode::SfmAlg)
    }
}

/// Replication level for HDFS writes of reduce outputs and reduce-stage
/// analytics logs (§III-B, Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReplicationLevel {
    /// Local replica only.
    Node,
    /// Local replica plus one replica elsewhere in the same rack
    /// (ALG's default: "local and rack replicas").
    Rack,
    /// Replicas spread across racks (standard HDFS behaviour).
    Cluster,
}

impl ReplicationLevel {
    /// Number of replicas written at this level given the configured
    /// `dfs.replication` factor.
    pub fn replica_count(&self, dfs_replication: u16) -> u16 {
        match self {
            ReplicationLevel::Node => 1,
            _ => dfs_replication.max(1),
        }
    }
}

/// Cluster and framework configuration (Table I plus detection knobs).
///
/// Time quantities are in milliseconds so the same struct drives both the
/// simulator (virtual ms) and the threaded runtime (real ms, usually scaled
/// down by the test harness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YarnConfig {
    // ---- Table I ----
    /// `mapreduce.map.java.opts`: MapTask heap, bytes.
    pub map_heap_bytes: u64,
    /// `mapreduce.reduce.java.opts`: ReduceTask heap, bytes.
    pub reduce_heap_bytes: u64,
    /// `mapreduce.task.io.sort.factor`: maximum number of streams merged at
    /// once; the reduce stage starts once segments are reduced below this.
    pub io_sort_factor: usize,
    /// `dfs.replication`.
    pub dfs_replication: u16,
    /// `dfs.block.size`, bytes.
    pub dfs_block_size: u64,
    /// Whether DFS reads verify each block replica's CRC32 frame and fail
    /// over to a healthy replica on a mismatch (HDFS-style end-to-end
    /// checksums). Off, reads trust the first live replica — the unsafe
    /// pre-checksum behaviour, kept as an experiment ablation.
    pub dfs_verify_on_read: bool,
    /// Maximum blocks the DFS re-replicates per repair pass — the
    /// background repair pipeline's concurrency (HDFS's replication work
    /// multiplier). Bounds how fast replication is restored after node
    /// death or detected rot, trading repair traffic against recovery
    /// latency.
    pub dfs_repair_concurrency: u32,
    /// `io.file.buffer.size`, bytes.
    pub io_file_buffer_size: u64,
    /// `yarn.nodemanager.vmem-pmem-ratio`.
    pub vmem_pmem_ratio: f64,
    /// `yarn.scheduler.minimum-allocation-mb`, bytes.
    pub min_allocation_bytes: u64,
    /// `yarn.scheduler.maximum-allocation-mb`, bytes.
    pub max_allocation_bytes: u64,

    // ---- failure detection / shuffle robustness ----
    /// Heartbeat interval NodeManager -> ResourceManager / task -> AM.
    pub heartbeat_interval_ms: u64,
    /// Time without heartbeats after which a node is declared lost. The
    /// paper measures ~70 s between crash and detection (Fig. 3).
    pub node_liveness_timeout_ms: u64,
    /// Consecutive fetch failures against one MOF source before the fetch is
    /// reported to the AM.
    pub fetch_retries_per_source: u32,
    /// Base delay between fetch retries. Retries back off exponentially
    /// from this base (with deterministic seeded jitter) so a healed
    /// partition does not produce a synchronized retry storm.
    pub fetch_retry_delay_ms: u64,
    /// Hard wall on how long a recovering reducer's shuffle phase waits for
    /// missing or regenerating MOF sources before giving up. Must exceed
    /// the node liveness timeout, or a reducer could abandon a source
    /// before the cluster has even decided whether the source is dead.
    pub shuffle_wait_cap_ms: u64,
    /// Fraction of a reducer's pending sources that must be failing before
    /// the AM preempts (kills) the reducer as faulty — the mechanism behind
    /// spatial amplification.
    pub reducer_fetch_failure_fraction: f64,
    /// Maximum attempts per task before the job is failed.
    pub max_task_attempts: u32,
    /// Share of reduce-side heap usable as shuffle buffer.
    pub shuffle_buffer_fraction: f64,
    /// In-memory segment merge threshold: when the shuffle buffer exceeds
    /// this fraction, the in-memory merger flushes to disk.
    pub merge_spill_fraction: f64,
}

impl Default for YarnConfig {
    /// Table I values.
    fn default() -> Self {
        YarnConfig {
            map_heap_bytes: 1536 * MB,
            reduce_heap_bytes: 4096 * MB,
            io_sort_factor: 100,
            dfs_replication: 2,
            dfs_block_size: 128 * MB,
            dfs_verify_on_read: true,
            dfs_repair_concurrency: 2,
            io_file_buffer_size: 8 * MB,
            vmem_pmem_ratio: 2.1,
            min_allocation_bytes: 1024 * MB,
            max_allocation_bytes: 6144 * MB,
            heartbeat_interval_ms: 3_000,
            node_liveness_timeout_ms: 70_000,
            fetch_retries_per_source: 4,
            fetch_retry_delay_ms: 5_000,
            shuffle_wait_cap_ms: 1_400_000,
            reducer_fetch_failure_fraction: 0.5,
            max_task_attempts: 4,
            shuffle_buffer_fraction: 0.70,
            merge_spill_fraction: 0.66,
        }
    }
}

impl YarnConfig {
    /// Shuffle buffer capacity in bytes for a reduce task.
    pub fn shuffle_buffer_bytes(&self) -> u64 {
        (self.reduce_heap_bytes as f64 * self.shuffle_buffer_fraction) as u64
    }

    /// A configuration scaled for fast in-process tests: small buffers and
    /// millisecond-scale detection timeouts, preserving all ratios that the
    /// recovery logic depends on.
    ///
    /// Every field is pinned explicitly (no `..Default::default()`): the
    /// checked-in golden campaign reports were produced under these exact
    /// values, so a later change to a Table I default must not silently
    /// leak into the test-scale profile. The C1 config-coverage lint
    /// enforces this.
    pub fn scaled_for_tests() -> Self {
        YarnConfig {
            map_heap_bytes: 4 * MB,
            reduce_heap_bytes: 16 * MB,
            io_sort_factor: 10,
            dfs_replication: 2,
            dfs_block_size: 256 * KB,
            dfs_verify_on_read: true,
            dfs_repair_concurrency: 2,
            io_file_buffer_size: 8 * KB,
            vmem_pmem_ratio: 2.1,
            min_allocation_bytes: 1024 * MB,
            max_allocation_bytes: 6144 * MB,
            heartbeat_interval_ms: 10,
            node_liveness_timeout_ms: 250,
            fetch_retries_per_source: 3,
            fetch_retry_delay_ms: 20,
            shuffle_wait_cap_ms: 5_000,
            reducer_fetch_failure_fraction: 0.5,
            max_task_attempts: 8,
            shuffle_buffer_fraction: 0.70,
            merge_spill_fraction: 0.66,
        }
    }

    /// Basic sanity checks; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.map_heap_bytes == 0 || self.reduce_heap_bytes == 0 {
            return Err("task heaps must be nonzero".into());
        }
        if self.io_sort_factor < 2 {
            return Err("io.sort.factor must be >= 2".into());
        }
        if self.dfs_replication == 0 {
            return Err("dfs.replication must be >= 1".into());
        }
        if self.dfs_block_size == 0 {
            return Err("dfs.block.size must be nonzero".into());
        }
        if self.dfs_verify_on_read && self.dfs_repair_concurrency == 0 {
            return Err(
                "verify-on-read detects rot but a zero dfs repair concurrency can never heal it".into()
            );
        }
        if self.io_file_buffer_size == 0 {
            return Err("io.file.buffer.size must be nonzero".into());
        }
        if self.vmem_pmem_ratio < 1.0 {
            return Err("vmem-pmem ratio must be >= 1".into());
        }
        if self.heartbeat_interval_ms == 0 {
            return Err("heartbeat interval must be nonzero".into());
        }
        if self.fetch_retries_per_source == 0 {
            return Err("fetch retries per source must be >= 1".into());
        }
        if self.fetch_retry_delay_ms == 0 {
            return Err("a zero fetch retry delay is a hot retry loop".into());
        }
        if self.max_task_attempts == 0 {
            return Err("max task attempts must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.shuffle_buffer_fraction) {
            return Err("shuffle_buffer_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.merge_spill_fraction) {
            return Err("merge_spill_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.reducer_fetch_failure_fraction) {
            return Err("reducer_fetch_failure_fraction must be in [0,1]".into());
        }
        if self.min_allocation_bytes > self.max_allocation_bytes {
            return Err("minimum allocation exceeds maximum allocation".into());
        }
        if self.node_liveness_timeout_ms < self.heartbeat_interval_ms {
            return Err("node liveness timeout shorter than heartbeat interval".into());
        }
        if self.shuffle_wait_cap_ms <= self.node_liveness_timeout_ms {
            return Err("shuffle wait cap must exceed the node liveness timeout".into());
        }
        Ok(())
    }
}

/// Configuration of the ALM framework itself (§III, §IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlmConfig {
    pub mode: RecoveryMode,
    /// Interval between analytics-log snapshots of a running ReduceTask.
    /// §III-A observes that *higher* frequency lowers per-log cost; Fig. 12
    /// sweeps this.
    pub logging_interval_ms: u64,
    /// Replication level used for reduce-stage log records and flushed
    /// reduce output on HDFS (ALG default: rack).
    pub log_replication: ReplicationLevel,
    /// Algorithm 1, line 10: maximum re-launches of a failed ReduceTask on
    /// its original (still-alive) node before giving up on local resume.
    pub limit_local: u32,
    /// Algorithm 1, line 16: cap on concurrently running FCM-mode recovery
    /// tasks per job (default 10 in the paper).
    pub fcm_cap: usize,
    /// Algorithm 1, line 14: a speculative recovery attempt is spawned only
    /// while the number of running attempts of the task is <= this.
    pub max_running_attempts_for_speculation: u32,
    /// §IV-B: proactively re-execute MapTasks from a failed node so MOFs are
    /// regenerated before reducers stall. Disabling this re-introduces
    /// temporal amplification (ablation for Fig. 10).
    pub proactive_map_regen: bool,
    /// §IV-A.1: participant nodes dismantle their Local-MPQs when no request
    /// arrives from a recovering ReduceTask within this period.
    pub fcm_teardown_timeout_ms: u64,
}

impl Default for AlmConfig {
    fn default() -> Self {
        AlmConfig {
            mode: RecoveryMode::SfmAlg,
            logging_interval_ms: 5_000,
            log_replication: ReplicationLevel::Rack,
            limit_local: 1,
            fcm_cap: 10,
            max_running_attempts_for_speculation: 2,
            proactive_map_regen: true,
            fcm_teardown_timeout_ms: 60_000,
        }
    }
}

impl AlmConfig {
    /// The stock-YARN configuration: no logging, no migration.
    pub fn baseline() -> Self {
        AlmConfig { mode: RecoveryMode::Baseline, ..AlmConfig::default() }
    }

    pub fn with_mode(mode: RecoveryMode) -> Self {
        AlmConfig { mode, ..AlmConfig::default() }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.fcm_cap == 0 && self.mode.sfm_enabled() {
            return Err("fcm_cap must be >= 1 when SFM is enabled".into());
        }
        if self.logging_interval_ms == 0 && self.mode.logs_enabled() {
            return Err("logging interval must be nonzero when ALG is enabled".into());
        }
        Ok(())
    }
}

/// How a job chain recovers memory-resident state lost to a node crash
/// (the `alm-mem` in-memory iterative engine mode).
///
/// M3R-style in-memory chains keep MOFs and reduce state in RAM for
/// memory-speed iteration, but a node crash then destroys state for
/// *every* iteration whose partitions lived there — the paper's failure
/// amplification, sharpened. The two modes are the two answers:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemMode {
    /// Pure in-memory chains (M3R): nothing durable survives a crash, so
    /// lost partitions are recomputed by replaying the whole upstream
    /// lineage — every completed iteration back to the chain's seed input.
    /// The amplification-heavy baseline.
    LineageReplay,
    /// The paper's answer carried into the in-memory era: each iteration's
    /// reduce state is also ALG-logged durably (DFS-replicated), and a
    /// crash restores from the logs + FCM migration — only the in-flight
    /// iteration re-runs, under `RecoveryMode::SfmAlg`.
    AlgFcm,
}

impl MemMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            MemMode::LineageReplay => "lineage-replay",
            MemMode::AlgFcm => "alg-fcm",
        }
    }

    /// The per-iteration recovery mode jobs of a chain run under.
    pub fn recovery_mode(&self) -> RecoveryMode {
        match self {
            MemMode::LineageReplay => RecoveryMode::Baseline,
            MemMode::AlgFcm => RecoveryMode::SfmAlg,
        }
    }

    /// Whether iteration state is durably logged (and therefore
    /// restorable without lineage replay).
    pub fn durable_state(&self) -> bool {
        matches!(self, MemMode::AlgFcm)
    }
}

impl std::fmt::Display for MemMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Knobs of the in-memory iterative engine mode (`alm-mem`): the resident
/// store budget and the chain's failure/termination semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Per-node capacity of the resident store, bytes. Entries beyond the
    /// budget are evicted deterministically (LRU over unpinned entries);
    /// eviction is semantically invisible — an evicted partition is
    /// recomputed or restored, never silently dropped.
    pub mem_resident_capacity_bytes: u64,
    /// How resident state lost to a node crash is recovered.
    pub mem_mode: MemMode,
    /// Pin the latest iteration's state partitions against eviction (the
    /// hot set the next iteration is guaranteed to read).
    pub mem_pin_hot_partitions: bool,
    /// Hard iteration cap for a chain (convergence may stop it earlier).
    pub mem_max_chain_iterations: u32,
    /// Convergence threshold in fixed-point micro-units: the chain stops
    /// once the largest per-partition state delta falls below this.
    pub mem_convergence_epsilon_micro: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            mem_resident_capacity_bytes: 8 * GB,
            mem_mode: MemMode::AlgFcm,
            mem_pin_hot_partitions: true,
            mem_max_chain_iterations: 50,
            mem_convergence_epsilon_micro: 1_000,
        }
    }
}

impl MemConfig {
    /// Test-scaled profile: a small resident budget so eviction paths are
    /// actually exercised, and short chains.
    pub fn scaled_for_tests() -> Self {
        MemConfig {
            mem_resident_capacity_bytes: 256 * KB,
            mem_mode: MemMode::AlgFcm,
            mem_pin_hot_partitions: true,
            mem_max_chain_iterations: 8,
            mem_convergence_epsilon_micro: 1_000,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.mem_resident_capacity_bytes == 0 {
            return Err("mem_resident_capacity_bytes must be nonzero".into());
        }
        if self.mem_max_chain_iterations == 0 {
            return Err("mem_max_chain_iterations must be >= 1".into());
        }
        if self.mem_convergence_epsilon_micro == 0 && self.mem_max_chain_iterations > 1 {
            return Err(
                "mem_convergence_epsilon_micro must be nonzero (a zero threshold never converges)".into()
            );
        }
        // Pinning promises the next iteration its inputs stay resident;
        // an over-tight budget would turn that promise into put failures
        // on every partition, so require headroom for at least one frame.
        if self.mem_pin_hot_partitions && self.mem_resident_capacity_bytes < KB {
            return Err("mem_pin_hot_partitions needs mem_resident_capacity_bytes >= 1 KB".into());
        }
        match self.mem_mode {
            MemMode::LineageReplay | MemMode::AlgFcm => Ok(()),
        }
    }
}

/// Hardware profile of the evaluation testbed (§V-A): 21 nodes, 10 GbE,
/// hex-core Xeons, one SATA SSD each. Used by the simulator's cost models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub nodes: u32,
    pub racks: u32,
    /// Per-node NIC bandwidth, bytes/second (10 GbE).
    pub nic_bandwidth: u64,
    /// Per-node aggregate disk read bandwidth, bytes/second (SATA SSD).
    pub disk_read_bandwidth: u64,
    /// Per-node aggregate disk write bandwidth, bytes/second.
    pub disk_write_bandwidth: u64,
    /// Map/reduce container slots per node (24 GB RAM, per-task heaps of
    /// Table I give roughly this many concurrent tasks).
    pub map_slots_per_node: u32,
    pub reduce_slots_per_node: u32,
    /// Container/JVM launch latency, ms.
    pub container_launch_ms: u64,
    /// CPU cores per node (4 x hex-core Xeon X5650 in the testbed).
    pub cores_per_node: u32,
    /// Aggregate cross-rack uplink bandwidth per rack, bytes/second.
    /// Oversubscribed relative to the sum of node NICs, which is what makes
    /// cluster-level replication expensive (Fig. 13).
    pub rack_uplink_bandwidth: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 21,
            racks: 2,
            nic_bandwidth: (10 * GB) / 8,  // 10 Gb/s => 1.25 GB/s
            disk_read_bandwidth: 480 * MB, // SATA SSD
            disk_write_bandwidth: 400 * MB,
            map_slots_per_node: 8,
            reduce_slots_per_node: 4,
            container_launch_ms: 2_500,
            cores_per_node: 24,
            rack_uplink_bandwidth: (3 * GB) / 4,
        }
    }
}

impl ClusterSpec {
    /// Worker nodes available for task containers (one node of the testbed
    /// is dedicated to RM/NameNode in §V-A).
    pub fn worker_nodes(&self) -> u32 {
        self.nodes.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_defaults() {
        let c = YarnConfig::default();
        assert_eq!(c.map_heap_bytes, 1536 * MB);
        assert_eq!(c.reduce_heap_bytes, 4096 * MB);
        assert_eq!(c.io_sort_factor, 100);
        assert_eq!(c.dfs_replication, 2);
        assert_eq!(c.dfs_block_size, 128 * MB);
        assert_eq!(c.io_file_buffer_size, 8 * MB);
        assert!((c.vmem_pmem_ratio - 2.1).abs() < 1e-9);
        assert_eq!(c.min_allocation_bytes, 1024 * MB);
        assert_eq!(c.max_allocation_bytes, 6144 * MB);
        c.validate().expect("Table I config must validate");
    }

    #[test]
    fn scaled_config_validates_and_preserves_structure() {
        let c = YarnConfig::scaled_for_tests();
        c.validate().unwrap();
        assert!(c.node_liveness_timeout_ms >= c.heartbeat_interval_ms);
        assert!(c.io_sort_factor >= 2);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = YarnConfig { io_sort_factor: 1, ..YarnConfig::default() };
        assert!(c.validate().is_err());

        let mut c = YarnConfig::default();
        c.min_allocation_bytes = c.max_allocation_bytes + 1;
        assert!(c.validate().is_err());

        let mut c = YarnConfig::default();
        c.node_liveness_timeout_ms = c.heartbeat_interval_ms - 1;
        assert!(c.validate().is_err());

        let mut c = YarnConfig::default();
        c.shuffle_wait_cap_ms = c.node_liveness_timeout_ms;
        assert!(c.validate().is_err(), "wait cap must strictly exceed the liveness timeout");
    }

    #[test]
    fn validation_covers_every_field() {
        // One degenerate value per newly covered field; each must be caught.
        for breakage in [
            |c: &mut YarnConfig| c.map_heap_bytes = 0,
            |c: &mut YarnConfig| c.reduce_heap_bytes = 0,
            |c: &mut YarnConfig| c.dfs_replication = 0,
            |c: &mut YarnConfig| c.dfs_repair_concurrency = 0,
            |c: &mut YarnConfig| c.io_file_buffer_size = 0,
            |c: &mut YarnConfig| c.vmem_pmem_ratio = 0.5,
            |c: &mut YarnConfig| c.heartbeat_interval_ms = 0,
            |c: &mut YarnConfig| c.fetch_retries_per_source = 0,
            |c: &mut YarnConfig| c.fetch_retry_delay_ms = 0,
            |c: &mut YarnConfig| c.max_task_attempts = 0,
        ] {
            let mut c = YarnConfig::default();
            breakage(&mut c);
            assert!(c.validate().is_err(), "degenerate config accepted");
        }
    }

    #[test]
    fn scaled_profile_pins_every_field_to_its_golden_value() {
        // The golden campaign reports were produced under this profile; the
        // fields that happen to coincide with Table I must stay pinned even
        // if the Table I defaults later change.
        let c = YarnConfig::scaled_for_tests();
        assert!((c.vmem_pmem_ratio - 2.1).abs() < 1e-9);
        assert_eq!(c.min_allocation_bytes, 1024 * MB);
        assert_eq!(c.max_allocation_bytes, 6144 * MB);
        assert!((c.reducer_fetch_failure_fraction - 0.5).abs() < 1e-9);
        assert!((c.shuffle_buffer_fraction - 0.70).abs() < 1e-9);
        assert!((c.merge_spill_fraction - 0.66).abs() < 1e-9);
        assert!(c.dfs_verify_on_read, "golden reports assume verified DFS reads");
        assert_eq!(c.dfs_repair_concurrency, 2);
    }

    #[test]
    fn shuffle_wait_cap_exceeds_liveness_timeout_in_both_profiles() {
        for c in [YarnConfig::default(), YarnConfig::scaled_for_tests()] {
            assert!(c.shuffle_wait_cap_ms > c.node_liveness_timeout_ms);
            c.validate().unwrap();
        }
    }

    #[test]
    fn recovery_mode_feature_flags() {
        assert!(!RecoveryMode::Baseline.logs_enabled());
        assert!(!RecoveryMode::Baseline.sfm_enabled());
        assert!(RecoveryMode::Alg.logs_enabled());
        assert!(!RecoveryMode::Alg.sfm_enabled());
        assert!(!RecoveryMode::Sfm.logs_enabled());
        assert!(RecoveryMode::Sfm.sfm_enabled());
        assert!(RecoveryMode::SfmAlg.logs_enabled());
        assert!(RecoveryMode::SfmAlg.sfm_enabled());
    }

    #[test]
    fn replication_levels() {
        assert_eq!(ReplicationLevel::Node.replica_count(3), 1);
        assert_eq!(ReplicationLevel::Rack.replica_count(2), 2);
        assert_eq!(ReplicationLevel::Cluster.replica_count(2), 2);
        // A zero dfs.replication still yields at least one replica.
        assert_eq!(ReplicationLevel::Cluster.replica_count(0), 1);
    }

    #[test]
    fn alm_defaults_match_paper() {
        let a = AlmConfig::default();
        assert_eq!(a.fcm_cap, 10, "paper: FCM cap defaults to 10");
        assert_eq!(a.max_running_attempts_for_speculation, 2);
        assert_eq!(a.log_replication, ReplicationLevel::Rack);
        assert!(a.proactive_map_regen);
        a.validate().unwrap();
    }

    #[test]
    fn alm_validation() {
        let mut a = AlmConfig { fcm_cap: 0, ..AlmConfig::default() };
        assert!(a.validate().is_err());
        a.mode = RecoveryMode::Baseline;
        assert!(a.validate().is_ok(), "fcm_cap irrelevant without SFM");

        let a = AlmConfig { logging_interval_ms: 0, ..AlmConfig::default() };
        assert!(a.validate().is_err());
    }

    #[test]
    fn cluster_spec_testbed() {
        let s = ClusterSpec::default();
        assert_eq!(s.nodes, 21);
        assert_eq!(s.worker_nodes(), 20);
        assert_eq!(s.nic_bandwidth, (10 * GB) / 8); // 1.25 GB/s
    }

    #[test]
    fn mem_mode_semantics() {
        assert_eq!(MemMode::LineageReplay.recovery_mode(), RecoveryMode::Baseline);
        assert_eq!(MemMode::AlgFcm.recovery_mode(), RecoveryMode::SfmAlg);
        assert!(!MemMode::LineageReplay.durable_state());
        assert!(MemMode::AlgFcm.durable_state());
        assert_eq!(MemMode::LineageReplay.to_string(), "lineage-replay");
        assert_eq!(MemMode::AlgFcm.to_string(), "alg-fcm");
    }

    #[test]
    fn mem_config_profiles_validate() {
        MemConfig::default().validate().expect("default MemConfig must validate");
        let t = MemConfig::scaled_for_tests();
        t.validate().expect("scaled MemConfig must validate");
        // The test profile keeps the budget deliberately tight so eviction
        // is exercised, but big enough to hold at least one pinned frame.
        assert_eq!(t.mem_resident_capacity_bytes, 256 * KB);
        assert_eq!(t.mem_mode, MemMode::AlgFcm);
        assert!(t.mem_pin_hot_partitions);
        assert_eq!(t.mem_max_chain_iterations, 8);
        assert_eq!(t.mem_convergence_epsilon_micro, 1_000);
    }

    #[test]
    fn mem_config_rules_fire() {
        for breakage in [
            |c: &mut MemConfig| c.mem_resident_capacity_bytes = 0,
            |c: &mut MemConfig| c.mem_max_chain_iterations = 0,
            |c: &mut MemConfig| c.mem_convergence_epsilon_micro = 0,
            |c: &mut MemConfig| {
                c.mem_pin_hot_partitions = true;
                c.mem_resident_capacity_bytes = 100;
            },
        ] {
            let mut c = MemConfig::default();
            breakage(&mut c);
            assert!(c.validate().is_err(), "degenerate mem config accepted: {c:?}");
        }
        // A single-iteration chain never needs a convergence threshold.
        let c = MemConfig {
            mem_max_chain_iterations: 1,
            mem_convergence_epsilon_micro: 0,
            ..MemConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn mem_config_serde_round_trip() {
        for mode in [MemMode::LineageReplay, MemMode::AlgFcm] {
            let c = MemConfig { mem_mode: mode, ..MemConfig::scaled_for_tests() };
            let back: MemConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
            assert_eq!(back, c);
        }
    }
}
